//! Host-driven accelerator wrapper: the SALAM flow where the CPU programs
//! the accelerator's MMRs, DMA moves data between system RAM and the
//! accelerator's SPMs/RegBanks, and completion is signalled by interrupt.

use marvel_accel::mmr::{CTRL_START, MMR_CTRL, MMR_STATUS, STATUS_DONE, STATUS_ERROR};
use marvel_accel::{AccelState, Accelerator, DmaDir, DmaEngine, DmaJob, MemRef};
use marvel_ir::memmap::RAM_BASE;

/// One entry of an accelerator's DMA plan. The RAM address comes from MMR
/// data register `addr_arg` at start time, so the host chooses buffers.
#[derive(Debug, Clone, Copy)]
pub struct DmaPlanEntry {
    pub dir: DmaDir,
    /// Index of the MMR data register holding the RAM byte address.
    pub addr_arg: usize,
    pub mem: MemRef,
    pub mem_off: usize,
    pub len: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HState {
    Idle,
    DmaIn,
    Compute,
    DmaOut,
    Done,
}

/// An accelerator plus its DMA engine and host-interface state machine.
#[derive(Debug, Clone)]
pub struct HostedAccel {
    pub accel: Accelerator,
    pub dma: DmaEngine,
    pub plan_in: Vec<DmaPlanEntry>,
    pub plan_out: Vec<DmaPlanEntry>,
    /// MMR data registers passed as CDFG entry arguments.
    pub compute_args: Vec<usize>,
    state: HState,
    /// Edge-triggered completion interrupt (consumed by the SoC).
    pub irq_out: bool,
    /// Total cycles spent per phase (reporting).
    pub dma_cycles: u64,
    pub compute_cycles: u64,
}

impl HostedAccel {
    pub fn new(
        mut accel: Accelerator,
        plan_in: Vec<DmaPlanEntry>,
        plan_out: Vec<DmaPlanEntry>,
        compute_args: Vec<usize>,
    ) -> Self {
        let max_reg = plan_in
            .iter()
            .chain(&plan_out)
            .map(|e| e.addr_arg + 1)
            .chain(compute_args.iter().map(|&i| i + 1))
            .max()
            .unwrap_or(0);
        accel.mmr.ensure_data_regs(max_reg);
        HostedAccel {
            accel,
            dma: DmaEngine::new(8),
            plan_in,
            plan_out,
            compute_args,
            state: HState::Idle,
            irq_out: false,
            dma_cycles: 0,
            compute_cycles: 0,
        }
    }

    /// Restore to the pristine checkpoint this wrapper was cloned from
    /// (zero-copy campaign reset). Returns state bytes copied.
    pub fn reset_from(&mut self, pristine: &HostedAccel) -> u64 {
        let mut bytes = self.accel.reset_from(&pristine.accel);
        bytes += self.dma.reset_from(&pristine.dma);
        self.plan_in.clone_from(&pristine.plan_in);
        self.plan_out.clone_from(&pristine.plan_out);
        self.compute_args.clone_from(&pristine.compute_args);
        self.state = pristine.state;
        self.irq_out = pristine.irq_out;
        self.dma_cycles = pristine.dma_cycles;
        self.compute_cycles = pristine.compute_cycles;
        bytes + 32
    }

    /// Functional-state equality for the convergence exit: the host-side
    /// phase machine, IRQ line, DMA queue and the wrapped accelerator must
    /// all match; the per-phase cycle tallies are observational.
    pub fn state_eq(&self, pristine: &HostedAccel) -> bool {
        self.state == pristine.state
            && self.irq_out == pristine.irq_out
            && self.dma.state_eq(&pristine.dma)
            && self.accel.state_eq(&pristine.accel)
    }

    /// True when neither the accelerator nor its memories carry taint.
    pub fn taint_quiescent(&self) -> bool {
        self.accel.taint_quiescent()
    }

    /// Host MMR write (8-byte registers).
    pub fn mmr_write(&mut self, reg: usize, val: u64) -> Option<()> {
        self.accel.mmr.write(reg, val)
    }

    /// Host MMR read.
    pub fn mmr_read(&mut self, reg: usize) -> Option<u64> {
        self.accel.mmr.read(reg)
    }

    pub fn busy(&self) -> bool {
        !matches!(self.state, HState::Idle | HState::Done)
    }

    fn queue_plan(&mut self, entries: &[DmaPlanEntry]) -> bool {
        for e in entries.iter() {
            let ram_addr = self.accel.mmr.peek(marvel_accel::mmr::MMR_DATA0 + e.addr_arg);
            if ram_addr < RAM_BASE {
                return false;
            }
            self.dma.push(DmaJob {
                dir: e.dir,
                ram_off: (ram_addr - RAM_BASE) as usize,
                mem: e.mem,
                mem_off: e.mem_off,
                len: e.len,
            });
        }
        true
    }

    fn fail(&mut self) {
        self.accel.mmr.poke(MMR_STATUS, STATUS_DONE | STATUS_ERROR);
        self.state = HState::Done;
        self.irq_out = true;
    }

    /// Advance one cycle. `ram` is the system RAM.
    pub fn tick(&mut self, ram: &mut [u8]) {
        self.tick_tainted(ram, None)
    }

    /// [`tick`](Self::tick) with an optional RAM taint shadow, so DMA
    /// transfers carry marvel-taint bytes between system RAM and the
    /// accelerator SRAMs.
    pub fn tick_tainted(&mut self, ram: &mut [u8], ram_shadow: Option<&mut [u8]>) {
        match self.state {
            HState::Idle | HState::Done => {
                if self.accel.mmr.peek(MMR_CTRL) & CTRL_START != 0 {
                    self.accel.mmr.poke(MMR_CTRL, 0);
                    self.accel.mmr.poke(MMR_STATUS, 0);
                    self.accel.reset();
                    let plan = self.plan_in.clone();
                    if !self.queue_plan(&plan) {
                        self.fail();
                        return;
                    }
                    self.state = HState::DmaIn;
                }
            }
            HState::DmaIn => {
                self.dma_cycles += 1;
                if !self.dma.tick_tainted(ram, ram_shadow, &mut self.accel) {
                    self.fail();
                    return;
                }
                if !self.dma.busy() {
                    let args: Vec<u64> = self
                        .compute_args
                        .iter()
                        .map(|&i| self.accel.mmr.peek(marvel_accel::mmr::MMR_DATA0 + i))
                        .collect();
                    self.accel.start(&args);
                    self.state = HState::Compute;
                }
            }
            HState::Compute => {
                self.compute_cycles += 1;
                match self.accel.tick() {
                    AccelState::Done => {
                        // Suppress the accelerator's own IRQ until DMA-out
                        // completes; the host must not read stale results.
                        self.accel.irq = false;
                        let plan = self.plan_out.clone();
                        if !self.queue_plan(&plan) {
                            self.fail();
                            return;
                        }
                        self.state = HState::DmaOut;
                    }
                    AccelState::Error(_) => {
                        self.accel.irq = false;
                        self.state = HState::Done;
                        self.irq_out = true;
                    }
                    _ => {}
                }
            }
            HState::DmaOut => {
                self.dma_cycles += 1;
                if !self.dma.tick_tainted(ram, ram_shadow, &mut self.accel) {
                    self.fail();
                    return;
                }
                if !self.dma.busy() {
                    self.state = HState::Done;
                    self.irq_out = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marvel_accel::air::CdfgBuilder;
    use marvel_accel::{FuConfig, Sram, SramKind};
    use marvel_isa::AluOp;

    /// OUT[i] = IN[i] + 1 for i in 0..arg0
    fn inc_accel() -> Accelerator {
        let mut g = CdfgBuilder::new();
        let entry = g.block(1);
        let body = g.block(2);
        let done = g.block(0);
        g.select(entry);
        let n = g.arg(0);
        let z = g.konst(0);
        g.jump(body, &[z, n]);
        g.select(body);
        let i = g.arg(0);
        let n = g.arg(1);
        let eight = g.konst(8);
        let addr = g.alu(AluOp::Mul, i, eight);
        let v = g.load(MemRef::Spm(0), 8, addr);
        let one = g.konst(1);
        let v2 = g.alu(AluOp::Add, v, one);
        g.store(MemRef::Spm(1), 8, addr, v2);
        let i2 = g.alu(AluOp::Add, i, one);
        let more = g.alu(AluOp::Sltu, i2, n);
        g.branch(more, body, &[i2, n], done, &[]);
        g.select(done);
        g.finish();
        Accelerator::new(
            "inc",
            g.build().unwrap(),
            FuConfig::default(),
            vec![Sram::new("IN", SramKind::Spm, 64, 2), Sram::new("OUT", SramKind::Spm, 64, 2)],
            vec![],
            1,
        )
    }

    #[test]
    fn full_hosted_flow() {
        let a = inc_accel();
        let mut h = HostedAccel::new(
            a,
            vec![DmaPlanEntry {
                dir: DmaDir::ToSram,
                addr_arg: 1,
                mem: MemRef::Spm(0),
                mem_off: 0,
                len: 64,
            }],
            vec![DmaPlanEntry {
                dir: DmaDir::ToRam,
                addr_arg: 2,
                mem: MemRef::Spm(1),
                mem_off: 0,
                len: 64,
            }],
            vec![0], // arg0 = element count from data reg 0
        );
        let mut ram = vec![0u8; 4096];
        for i in 0..8u64 {
            ram[(i * 8) as usize..(i * 8 + 8) as usize].copy_from_slice(&(i * 10).to_le_bytes());
        }
        // Program MMRs: count=8, in at RAM_BASE+0, out at RAM_BASE+1024.
        h.mmr_write(marvel_accel::mmr::MMR_DATA0, 8).unwrap();
        h.mmr_write(marvel_accel::mmr::MMR_DATA0 + 1, RAM_BASE).unwrap();
        h.mmr_write(marvel_accel::mmr::MMR_DATA0 + 2, RAM_BASE + 1024).unwrap();
        h.mmr_write(MMR_CTRL, CTRL_START).unwrap();
        for _ in 0..100_000 {
            h.tick(&mut ram);
            if h.irq_out {
                break;
            }
        }
        assert!(h.irq_out, "hosted flow must raise completion IRQ");
        assert_eq!(h.mmr_read(MMR_STATUS).unwrap() & STATUS_DONE, STATUS_DONE);
        for i in 0..8u64 {
            let off = 1024 + (i * 8) as usize;
            let v = u64::from_le_bytes(ram[off..off + 8].try_into().unwrap());
            assert_eq!(v, i * 10 + 1);
        }
        assert!(h.dma_cycles > 0 && h.compute_cycles > 0);
    }

    #[test]
    fn bad_dma_address_fails_gracefully() {
        let a = inc_accel();
        let mut h = HostedAccel::new(
            a,
            vec![DmaPlanEntry {
                dir: DmaDir::ToSram,
                addr_arg: 1,
                mem: MemRef::Spm(0),
                mem_off: 0,
                len: 64,
            }],
            vec![],
            vec![0],
        );
        let mut ram = vec![0u8; 128];
        h.mmr_write(marvel_accel::mmr::MMR_DATA0, 8).unwrap();
        h.mmr_write(marvel_accel::mmr::MMR_DATA0 + 1, 0x10).unwrap(); // below RAM_BASE
        h.mmr_write(MMR_CTRL, CTRL_START).unwrap();
        for _ in 0..100 {
            h.tick(&mut ram);
        }
        assert!(h.irq_out);
        assert_eq!(h.mmr_read(MMR_STATUS).unwrap() & STATUS_ERROR, STATUS_ERROR);
    }
}
