//! The heterogeneous system: core + RAM + console + interrupt controller +
//! hosted accelerators, with a unified fault-injection surface and
//! clone-based checkpointing.

use crate::hosted::HostedAccel;
use crate::irq::{IrqController, IrqCtrlKind};
use crate::isr::build_isr;
use marvel_cpu::{
    Bus, Core, CoreConfig, CoreDirtyMarks, DirtyMap, DirtyMarks, FaultFate, LaneEngine, LaneEvent,
    StepEvent,
};
use marvel_ir::memmap::{
    ACCEL_MMR_BASE, ACCEL_MMR_STRIDE, CONSOLE_ADDR, IRQ_CTRL_BASE, IRQ_CTRL_SIZE, IRQ_VECTOR, RAM_BASE,
    RAM_SIZE,
};
use marvel_ir::Binary;
use marvel_isa::Trap;

/// All fault-injection targets of the heterogeneous SoC.
///
/// CPU-side targets follow the paper's Section IV-E list; DSA-side targets
/// are the Table IV scratchpads, register banks and MMR blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Integer physical register file.
    PrfInt,
    /// Floating-point physical register file.
    PrfFp,
    /// L1 instruction cache data array.
    L1I,
    /// L1 data cache data array.
    L1D,
    /// L2 cache data array.
    L2,
    LoadQueue,
    StoreQueue,
    /// Reorder-buffer result fields.
    Rob,
    /// Speculative rename map.
    RenameMap,
    /// Scratchpad `mem` of accelerator `accel`.
    Spm {
        accel: usize,
        mem: usize,
    },
    /// Register bank `mem` of accelerator `accel`.
    RegBank {
        accel: usize,
        mem: usize,
    },
    /// MMR block of accelerator `accel`.
    Mmr {
        accel: usize,
    },
}

impl Target {
    /// CPU-side targets (no accelerator indices needed).
    pub const CPU_ALL: [Target; 9] = [
        Target::PrfInt,
        Target::PrfFp,
        Target::L1I,
        Target::L1D,
        Target::L2,
        Target::LoadQueue,
        Target::StoreQueue,
        Target::Rob,
        Target::RenameMap,
    ];

    pub fn name(&self) -> String {
        match self {
            Target::PrfInt => "PhysRegFile(Int)".into(),
            Target::PrfFp => "PhysRegFile(FP)".into(),
            Target::L1I => "L1I".into(),
            Target::L1D => "L1D".into(),
            Target::L2 => "L2".into(),
            Target::LoadQueue => "LoadQueue".into(),
            Target::StoreQueue => "StoreQueue".into(),
            Target::Rob => "ROB".into(),
            Target::RenameMap => "RenameMap".into(),
            Target::Spm { accel, mem } => format!("SPM[{accel}.{mem}]"),
            Target::RegBank { accel, mem } => format!("RegBank[{accel}.{mem}]"),
            Target::Mmr { accel } => format!("MMR[{accel}]"),
        }
    }
}

/// Devices + memory, split from the core so `Core::tick(&mut bus)` can
/// borrow them while the core is borrowed mutably.
#[derive(Debug, Clone)]
pub struct SocBus {
    pub ram: Vec<u8>,
    pub console: Vec<u8>,
    pub irq_ctrl: IrqController,
    pub accels: Vec<HostedAccel>,
    /// marvel-taint shadow of `ram`, one byte of taint flags per data
    /// byte (empty = tracking off). Moves with cache line traffic and
    /// DMA transfers but never influences the data plane.
    pub ram_shadow: Vec<u8>,
    /// Dirty-page journal over `ram` (4 KiB pages) for the zero-copy
    /// campaign reset (`None` = tracking off). `write_line` marks pages;
    /// DMA ToRam drains, which write RAM through a raw slice, are folded
    /// in from the engines' watermarks by [`System::reset_from`].
    ram_journal: Option<Box<DirtyMap>>,
}

/// RAM dirty-page granularity (log2 of the 4 KiB page).
const RAM_PAGE_SHIFT: usize = 12;

impl SocBus {
    fn accel_reg(&self, addr: u64) -> Option<(usize, usize)> {
        if addr < ACCEL_MMR_BASE {
            return None;
        }
        let idx = ((addr - ACCEL_MMR_BASE) / ACCEL_MMR_STRIDE) as usize;
        if idx >= self.accels.len() {
            return None;
        }
        let off = (addr - ACCEL_MMR_BASE) % ACCEL_MMR_STRIDE;
        if !off.is_multiple_of(8) {
            return None;
        }
        Some((idx, (off / 8) as usize))
    }

    /// Advance all devices one cycle; posts accelerator IRQs.
    fn tick_devices(&mut self) {
        let ram = &mut self.ram;
        let shadow = &mut self.ram_shadow;
        for (i, a) in self.accels.iter_mut().enumerate() {
            if shadow.is_empty() {
                a.tick(ram);
            } else {
                a.tick_tainted(ram, Some(&mut shadow[..]));
            }
            if a.irq_out {
                a.irq_out = false;
                self.irq_ctrl.post(i as u32 + 1);
            }
        }
    }
}

impl Bus for SocBus {
    fn read_line(&mut self, addr: u64, buf: &mut [u8]) -> bool {
        if !self.is_cacheable(addr) || !self.is_cacheable(addr + buf.len() as u64 - 1) {
            return false;
        }
        let off = (addr - RAM_BASE) as usize;
        buf.copy_from_slice(&self.ram[off..off + buf.len()]);
        true
    }

    fn write_line(&mut self, addr: u64, data: &[u8]) -> bool {
        if !self.is_cacheable(addr) || !self.is_cacheable(addr + data.len() as u64 - 1) {
            return false;
        }
        let off = (addr - RAM_BASE) as usize;
        if let Some(j) = &mut self.ram_journal {
            j.mark(off >> RAM_PAGE_SHIFT);
            j.mark((off + data.len() - 1) >> RAM_PAGE_SHIFT);
        }
        self.ram[off..off + data.len()].copy_from_slice(data);
        true
    }

    fn device_read(&mut self, addr: u64, _size: u8) -> Option<u64> {
        if (IRQ_CTRL_BASE..IRQ_CTRL_BASE + IRQ_CTRL_SIZE).contains(&addr) {
            return self.irq_ctrl.mmio_read(addr - IRQ_CTRL_BASE);
        }
        if let Some((idx, reg)) = self.accel_reg(addr) {
            return self.accels[idx].mmr_read(reg);
        }
        None
    }

    fn device_write(&mut self, addr: u64, _size: u8, val: u64) -> Option<()> {
        if addr == CONSOLE_ADDR {
            self.console.push(val as u8);
            return Some(());
        }
        if (IRQ_CTRL_BASE..IRQ_CTRL_BASE + IRQ_CTRL_SIZE).contains(&addr) {
            return self.irq_ctrl.mmio_write(addr - IRQ_CTRL_BASE, val);
        }
        if let Some((idx, reg)) = self.accel_reg(addr) {
            return self.accels[idx].mmr_write(reg, val);
        }
        None
    }

    fn taint_read_line(&mut self, addr: u64, buf: &mut [u8]) {
        if self.ram_shadow.is_empty() || !self.is_cacheable(addr) {
            buf.fill(0);
            return;
        }
        let off = (addr - RAM_BASE) as usize;
        buf.copy_from_slice(&self.ram_shadow[off..off + buf.len()]);
    }

    fn taint_write_line(&mut self, addr: u64, data: &[u8]) {
        if self.ram_shadow.is_empty() || !self.is_cacheable(addr) {
            return;
        }
        let off = (addr - RAM_BASE) as usize;
        self.ram_shadow[off..off + data.len()].copy_from_slice(data);
    }

    fn is_cacheable(&self, addr: u64) -> bool {
        (RAM_BASE..RAM_BASE + RAM_SIZE).contains(&addr)
    }

    fn is_device(&self, addr: u64) -> bool {
        addr == CONSOLE_ADDR
            || (IRQ_CTRL_BASE..IRQ_CTRL_BASE + IRQ_CTRL_SIZE).contains(&addr)
            || self.accel_reg(addr).is_some()
    }
}

/// Drained dirty marks of a whole system segment: which CPU structures and
/// RAM pages a stretch of execution touched. Captured per ladder rung while
/// building the golden checkpoint ladder, then merged into a faulty run's
/// live journals at each rung crossing so the convergence compare covers
/// locations the *golden* run wrote even if the fault suppressed the write.
#[derive(Debug, Clone, Default)]
pub struct SysDirtyMarks {
    core: CoreDirtyMarks,
    ram: DirtyMarks,
}

/// Outcome of [`System::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// `Halt` committed; console output captured.
    Halted { cycles: u64 },
    /// A trap reached commit (fault-effect class: Crash).
    Crashed { trap: Trap, cycles: u64 },
    /// The cycle budget expired (fault-effect class: Crash/hang).
    Timeout,
}

/// Events surfaced by [`System::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysEvent {
    Running,
    Halted,
    Trapped(Trap),
    Checkpoint,
    SwitchCpu,
}

/// The heterogeneous system under test. `Clone` is the checkpoint
/// mechanism: cloning captures the full architectural *and*
/// microarchitectural state, including warm caches — the paper's extended
/// gem5 checkpoint semantics.
#[derive(Debug, Clone)]
pub struct System {
    pub core: Core,
    pub bus: SocBus,
    pub cycle: u64,
    /// Cycle at which the `Checkpoint` marker committed (if seen).
    pub checkpoint_cycle: Option<u64>,
    /// Cycle at which the `SwitchCpu` marker committed (if seen).
    pub switch_cycle: Option<u64>,
    /// Traps surfaced by the run loop (commit-stage crashes).
    pub traps: u64,
    /// Lockstep differential oracle (`None` = off). Enabled with
    /// [`enable_lockstep`](Self::enable_lockstep); every committed
    /// micro-op is then replayed on the architectural reference model.
    pub lockstep: Option<Box<marvel_ref::Lockstep>>,
}

impl System {
    pub fn new(cfg: CoreConfig) -> Self {
        let kind = IrqCtrlKind::for_isa(cfg.isa);
        System {
            core: Core::new(cfg),
            bus: SocBus {
                ram: vec![0u8; RAM_SIZE as usize],
                console: Vec::new(),
                irq_ctrl: IrqController::new(kind),
                accels: Vec::new(),
                ram_shadow: Vec::new(),
                ram_journal: None,
            },
            cycle: 0,
            checkpoint_cycle: None,
            switch_cycle: None,
            traps: 0,
            lockstep: None,
        }
    }

    /// Load a program image and install the ISR stub; the core starts at
    /// the binary's entry.
    pub fn load_binary(&mut self, bin: &Binary) {
        assert_eq!(bin.isa, self.core.isa(), "binary ISA mismatch");
        let off = (bin.entry - RAM_BASE) as usize;
        self.bus.ram[off..off + bin.image.len()].copy_from_slice(&bin.image);
        let isr = build_isr(self.core.isa(), self.bus.irq_ctrl.kind);
        let voff = (IRQ_VECTOR - RAM_BASE) as usize;
        self.bus.ram[voff..voff + isr.len()].copy_from_slice(&isr);
        self.core.reset_to(bin.entry);
    }

    /// Attach a hosted accelerator; returns its index (MMR page
    /// `ACCEL_MMR_BASE + idx * ACCEL_MMR_STRIDE`, IRQ source `idx + 1`).
    pub fn add_accel(&mut self, a: HostedAccel) -> usize {
        self.bus.accels.push(a);
        self.bus.accels.len() - 1
    }

    /// Attach the lockstep differential oracle. Call after
    /// [`load_binary`](Self::load_binary) and before the first tick: the
    /// reference machine is seeded from the core's current architectural
    /// state and a copy of RAM.
    pub fn enable_lockstep(&mut self) {
        self.core.enable_commit_effects();
        let ls = marvel_ref::Lockstep::new(
            self.core.isa(),
            self.core.arch_pc(),
            &self.core.arch_regs(),
            self.bus.ram.clone(),
            self.core.cfg.l1i.line as u64,
        );
        self.lockstep = Some(Box::new(ls));
    }

    /// First O3-vs-reference divergence, when lockstep is enabled.
    pub fn lockstep_divergence(&self) -> Option<&marvel_ref::Divergence> {
        self.lockstep.as_deref().and_then(|ls| ls.divergence())
    }

    /// Micro-ops checked by the lockstep oracle so far.
    pub fn lockstep_checked(&self) -> u64 {
        self.lockstep.as_deref().map(|ls| ls.checked()).unwrap_or(0)
    }

    /// Turn on dirty-state journaling (CPU structures + RAM page journal)
    /// so [`reset_from`](Self::reset_from) can restore this system to its
    /// checkpoint by undoing only what a run touched. Call once on the
    /// per-worker reusable system, right after cloning the checkpoint.
    pub fn enable_dirty_tracking(&mut self) {
        self.core.enable_dirty_tracking();
        if self.bus.ram_journal.is_none() {
            let pages = self.bus.ram.len().div_ceil(1 << RAM_PAGE_SHIFT);
            self.bus.ram_journal = Some(Box::new(DirtyMap::new(pages)));
        }
    }

    /// Restore this system to the pristine checkpoint it was cloned from,
    /// undoing journaled state (dirty RAM pages, dirty cache sets and
    /// registers) and copying small unjournaled structures wholesale.
    /// Returns state bytes copied — the zero-copy campaign's cost measure.
    ///
    /// Soundness relies on every RAM mutation being visible to the page
    /// journal: `write_line` marks pages directly, and DMA ToRam drains
    /// (raw-slice writes) are folded in here from each engine's watermark.
    pub fn reset_from(&mut self, pristine: &System) -> u64 {
        let mut bytes = self.core.reset_from(&pristine.core);
        self.fold_dma_watermarks();
        if let Some(mut j) = self.bus.ram_journal.take() {
            let ram_len = self.bus.ram.len();
            j.drain(|p| {
                let lo = p << RAM_PAGE_SHIFT;
                let hi = (lo + (1 << RAM_PAGE_SHIFT)).min(ram_len);
                self.bus.ram[lo..hi].copy_from_slice(&pristine.bus.ram[lo..hi]);
                bytes += (hi - lo) as u64;
            });
            self.bus.ram_journal = Some(j);
        } else {
            self.bus.ram.copy_from_slice(&pristine.bus.ram);
            bytes += self.bus.ram.len() as u64;
        }
        self.bus.console.clone_from(&pristine.bus.console);
        bytes += pristine.bus.console.len() as u64;
        self.bus.irq_ctrl = pristine.bus.irq_ctrl.clone();
        for (h, p) in self.bus.accels.iter_mut().zip(&pristine.bus.accels) {
            bytes += h.reset_from(p);
        }
        // Per-run taint shadow: the pristine checkpoint never carries one.
        if pristine.bus.ram_shadow.is_empty() {
            self.bus.ram_shadow.clear();
        } else {
            self.bus.ram_shadow.clone_from(&pristine.bus.ram_shadow);
        }
        self.cycle = pristine.cycle;
        self.checkpoint_cycle = pristine.checkpoint_cycle;
        self.switch_cycle = pristine.switch_cycle;
        self.traps = pristine.traps;
        self.lockstep.clone_from(&pristine.lockstep);
        bytes + 40 // SoC scalars + IRQ controller
    }

    /// Fold each DMA engine's RAM-write watermark into the page journal so
    /// raw-slice DMA drains are visible to journal-driven reset/compare.
    /// Marking is idempotent; the watermarks stay armed until the next
    /// [`reset_from`](Self::reset_from).
    fn fold_dma_watermarks(&mut self) {
        if let Some(j) = &mut self.bus.ram_journal {
            for h in &self.bus.accels {
                if let Some((lo, hi)) = h.dma.ram_written_range() {
                    for p in (lo >> RAM_PAGE_SHIFT)..=((hi - 1) >> RAM_PAGE_SHIFT) {
                        j.mark(p);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // checkpoint-ladder support (segment dirty marks + convergence exit)
    // ------------------------------------------------------------------

    /// Drain the CPU and RAM dirty journals into a [`SysDirtyMarks`]
    /// segment record, leaving the journals clean. Used while building the
    /// checkpoint ladder: each rung captures what the golden run touched
    /// since the previous rung. Requires
    /// [`enable_dirty_tracking`](Self::enable_dirty_tracking).
    pub fn take_dirty_marks(&mut self) -> SysDirtyMarks {
        self.fold_dma_watermarks();
        SysDirtyMarks {
            core: self.core.take_dirty_marks(),
            ram: self.bus.ram_journal.as_mut().map(|j| j.take_marks()).unwrap_or_default(),
        }
    }

    /// Merge a golden segment's dirty marks into this system's live
    /// journals, so a subsequent [`state_converged`](Self::state_converged)
    /// also checks locations only the golden run wrote (a fault can
    /// *suppress* a golden store; comparing only the faulty run's dirt
    /// would miss that divergence). Over-marking is harmless.
    pub fn merge_dirty_marks(&mut self, m: &SysDirtyMarks) {
        self.core.merge_dirty_marks(&m.core);
        if let Some(j) = &mut self.bus.ram_journal {
            j.merge(&m.ram);
        }
    }

    /// Dirty-diff convergence check: does this system's functional state
    /// equal `pristine`'s (a golden-run snapshot at the same cycle)?
    ///
    /// Journaled structures (RAM pages, cache sets, physical registers)
    /// are compared only at dirty locations — sound as long as golden
    /// segment marks have been [`merge_dirty_marks`](Self::merge_dirty_marks)-ed
    /// in at every rung crossing since restore, so the union covers every
    /// location either run wrote. Unjournaled structures are compared
    /// wholesale. Observational state (statistics, armed fault fates,
    /// journals, taint shadows) is excluded: it never steers execution.
    pub fn state_converged(&mut self, pristine: &System) -> bool {
        if self.cycle != pristine.cycle
            || self.checkpoint_cycle != pristine.checkpoint_cycle
            || self.switch_cycle != pristine.switch_cycle
            || self.traps != pristine.traps
            || self.bus.console != pristine.bus.console
            || !self.bus.irq_ctrl.state_eq(&pristine.bus.irq_ctrl)
        {
            return false;
        }
        if !self.bus.accels.iter().zip(&pristine.bus.accels).all(|(h, p)| h.state_eq(p)) {
            return false;
        }
        self.fold_dma_watermarks();
        let ram_len = self.bus.ram.len();
        let page_eq = |p: usize| {
            let lo = p << RAM_PAGE_SHIFT;
            let hi = (lo + (1 << RAM_PAGE_SHIFT)).min(ram_len);
            self.bus.ram[lo..hi] == pristine.bus.ram[lo..hi]
        };
        let ram_ok = match &self.bus.ram_journal {
            Some(j) => {
                let mut ok = true;
                j.peek(|p| ok = ok && page_eq(p));
                ok
            }
            None => self.bus.ram == pristine.bus.ram,
        };
        ram_ok && self.core.state_converged(&pristine.core)
    }

    /// True when no tracked state carries taint (or tracking is off) —
    /// required before a convergence exit when attribution is collected,
    /// so the frozen taint report equals the full run's.
    pub fn taint_quiescent(&self) -> bool {
        self.core.taint_quiescent()
            && self.bus.ram_shadow.iter().all(|&b| b == 0)
            && self.bus.accels.iter().all(|h| h.taint_quiescent())
    }

    /// Advance one cycle.
    pub fn tick(&mut self) -> SysEvent {
        self.cycle += 1;
        self.bus.tick_devices();
        self.core.set_irq(self.bus.irq_ctrl.line());
        let ev = self.core.tick(&mut self.bus);
        if let Some(ls) = self.lockstep.as_deref_mut() {
            // The reference model has no interrupt plumbing: stop
            // comparing the moment the core vectors into the ISR.
            if self.core.in_irq() {
                ls.suspend("interrupt service entered");
            }
            for e in self.core.drain_commit_effects() {
                ls.check(&e);
            }
        }
        match ev {
            StepEvent::None => SysEvent::Running,
            StepEvent::Halted => SysEvent::Halted,
            StepEvent::Trapped(t) => {
                self.traps += 1;
                SysEvent::Trapped(t)
            }
            StepEvent::CheckpointHit => {
                self.checkpoint_cycle = Some(self.cycle);
                SysEvent::Checkpoint
            }
            StepEvent::SwitchCpuHit => {
                self.switch_cycle = Some(self.cycle);
                SysEvent::SwitchCpu
            }
        }
    }

    /// Run until halt/trap or the cycle budget expires.
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        while self.cycle < max_cycles {
            match self.tick() {
                SysEvent::Halted => return RunOutcome::Halted { cycles: self.cycle },
                SysEvent::Trapped(t) => return RunOutcome::Crashed { trap: t, cycles: self.cycle },
                _ => {}
            }
        }
        RunOutcome::Timeout
    }

    /// Run until the `Checkpoint` marker commits (or halt/trap).
    pub fn run_to_checkpoint(&mut self, max_cycles: u64) -> SysEvent {
        while self.cycle < max_cycles {
            match self.tick() {
                SysEvent::Running => {}
                e => return e,
            }
        }
        SysEvent::Running
    }

    /// Program output so far.
    pub fn output(&self) -> &[u8] {
        &self.bus.console
    }

    /// Export run-loop and per-structure counters into a telemetry
    /// registry under `scope`: SoC-level cycle/trap gauges, the CPU's
    /// structure metrics under `<scope>.cpu`, and each hosted
    /// accelerator's under `<scope>.accel<i>`.
    pub fn publish_metrics(&self, reg: &marvel_telemetry::Registry, scope: &marvel_telemetry::Scope) {
        if !reg.is_enabled() {
            return;
        }
        reg.publish_scoped(scope, "cycles", self.cycle);
        reg.publish_scoped(scope, "traps", self.traps);
        reg.publish_scoped(scope, "console_bytes", self.bus.console.len() as u64);
        reg.publish_scoped(scope, "checkpoint_cycle", self.checkpoint_cycle.unwrap_or(0));
        reg.publish_scoped(scope, "switch_cycle", self.switch_cycle.unwrap_or(0));
        self.core.publish_metrics(reg, &scope.child("cpu"));
        for (i, h) in self.bus.accels.iter().enumerate() {
            let sc = scope.indexed("accel", i);
            h.accel.publish_metrics(reg, &sc);
            reg.publish_scoped(&sc, "dma_bytes_moved", h.dma.bytes_moved);
            reg.publish_scoped(&sc, "dma_cycles", h.dma_cycles);
            reg.publish_scoped(&sc, "hosted_compute_cycles", h.compute_cycles);
        }
    }

    // ------------------------------------------------------------------
    // marvel-taint
    // ------------------------------------------------------------------

    /// Enable bit-level taint tracking for a fault that will be injected
    /// into `t`. Must be called *before* [`flip`](Self::flip) /
    /// [`set_stuck`](Self::set_stuck) so the injection seeds the shadow
    /// planes. Allocates CPU, cache, accelerator and RAM shadows; the
    /// data plane is untouched, so runs stay bit-identical.
    pub fn enable_taint(&mut self, t: Target) {
        let seed = t.name();
        self.core.enable_taint(&seed);
        for h in &mut self.bus.accels {
            h.accel.enable_taint(&seed);
        }
        if self.bus.ram_shadow.is_empty() {
            self.bus.ram_shadow = vec![0u8; self.bus.ram.len()];
        }
    }

    pub fn taint_enabled(&self) -> bool {
        self.core.taint_enabled()
    }

    /// Merged propagation report: CPU-side tracer plus every hosted
    /// accelerator's tracer. `None` when taint is off.
    pub fn taint_report(&self) -> Option<marvel_telemetry::TaintReport> {
        let mut rep = self.core.taint_tracer()?.report();
        for h in &self.bus.accels {
            if let Some(tr) = h.accel.taint_tracer() {
                rep.absorb(tr.report());
            }
        }
        Some(rep)
    }

    /// Start recording a Konata pipeline trace on the CPU core.
    pub fn enable_pipe_trace(&mut self) {
        self.core.enable_pipe_trace();
    }

    // ------------------------------------------------------------------
    // fault-injection surface
    // ------------------------------------------------------------------

    /// Injectable bit count of `target`.
    pub fn bit_len(&self, t: Target) -> u64 {
        match t {
            Target::PrfInt => self.core.prf.bit_len(),
            Target::PrfFp => self.core.prf_fp.bit_len(),
            Target::L1I => self.core.l1i.bit_len(),
            Target::L1D => self.core.l1d.bit_len(),
            Target::L2 => self.core.l2.bit_len(),
            Target::LoadQueue => self.core.lq.bit_len(),
            Target::StoreQueue => self.core.sq.bit_len(),
            Target::Rob => self.core.rob_bit_len(),
            Target::RenameMap => self.core.rename_map().bit_len(),
            Target::Spm { accel, mem } => self.bus.accels[accel].accel.spms[mem].bit_len(),
            Target::RegBank { accel, mem } => self.bus.accels[accel].accel.regbanks[mem].bit_len(),
            Target::Mmr { accel } => self.bus.accels[accel].accel.mmr.bit_len(),
        }
    }

    /// Flip one bit of `target` (transient fault).
    pub fn flip(&mut self, t: Target, bit: u64) {
        assert!(bit < self.bit_len(t), "bit {bit} out of range for {}", t.name());
        match t {
            Target::PrfInt => {
                self.core.prf.flip_bit(bit);
            }
            Target::PrfFp => {
                self.core.prf_fp.flip_bit(bit);
            }
            Target::L1I => {
                self.core.l1i.flip_bit(bit);
            }
            Target::L1D => {
                self.core.l1d.flip_bit(bit);
            }
            Target::L2 => {
                self.core.l2.flip_bit(bit);
            }
            Target::LoadQueue => {
                self.core.lq.flip_bit(bit);
            }
            Target::StoreQueue => {
                self.core.sq.flip_bit(bit);
            }
            Target::Rob => {
                self.core.rob_flip_bit(bit);
            }
            Target::RenameMap => {
                self.core.rename_map_mut().flip_bit(bit);
                // The rename array has no shadow of its own: mark the
                // remapped architectural register as control-tainted.
                self.core.seed_rename_taint(bit);
            }
            Target::Spm { accel, mem } => {
                self.bus.accels[accel].accel.spms[mem].flip_bit(bit);
            }
            Target::RegBank { accel, mem } => {
                self.bus.accels[accel].accel.regbanks[mem].flip_bit(bit);
            }
            Target::Mmr { accel } => {
                self.bus.accels[accel].accel.mmr.flip_bit(bit);
            }
        }
    }

    /// Install a permanent stuck-at fault.
    pub fn set_stuck(&mut self, t: Target, bit: u64, value: bool) {
        assert!(bit < self.bit_len(t), "bit {bit} out of range for {}", t.name());
        match t {
            Target::PrfInt => self.core.prf.set_stuck(bit, value),
            Target::PrfFp => self.core.prf_fp.set_stuck(bit, value),
            Target::L1I => self.core.l1i.set_stuck(bit, value),
            Target::L1D => self.core.l1d.set_stuck(bit, value),
            Target::L2 => self.core.l2.set_stuck(bit, value),
            Target::Spm { accel, mem } => self.bus.accels[accel].accel.spms[mem].set_stuck(bit, value),
            Target::RegBank { accel, mem } => {
                self.bus.accels[accel].accel.regbanks[mem].set_stuck(bit, value)
            }
            Target::Mmr { accel } => self.bus.accels[accel].accel.mmr.set_stuck(bit, value),
            // Queue/ROB/rename state is short-lived; permanent faults there
            // are modelled as repeated transients by the campaign layer.
            Target::LoadQueue | Target::StoreQueue | Target::Rob | Target::RenameMap => {
                self.flip(t, bit)
            }
        }
    }

    /// Early-termination monitoring state of the armed fault, if the
    /// target supports it.
    pub fn fault_fate(&self, t: Target) -> Option<FaultFate> {
        fn conv(f: marvel_accel::SramFate) -> FaultFate {
            match f {
                marvel_accel::SramFate::Pending => FaultFate::Pending,
                marvel_accel::SramFate::Read => FaultFate::Read,
                marvel_accel::SramFate::Overwritten => FaultFate::Overwritten,
            }
        }
        match t {
            Target::PrfInt => self.core.prf.fate(),
            Target::PrfFp => self.core.prf_fp.fate(),
            Target::L1I => self.core.l1i.fate(),
            Target::L1D => self.core.l1d.fate(),
            Target::L2 => self.core.l2.fate(),
            Target::Rob => self.core.rob_fate(),
            Target::Spm { accel, mem } => self.bus.accels[accel].accel.spms[mem].fate().map(conv),
            Target::RegBank { accel, mem } => {
                self.bus.accels[accel].accel.regbanks[mem].fate().map(conv)
            }
            Target::Mmr { accel } => self.bus.accels[accel].accel.mmr.fate().map(conv),
            Target::LoadQueue | Target::StoreQueue | Target::RenameMap => None,
        }
    }

    // ------------------------------------------------------------------
    // lane-packed injection surface
    // ------------------------------------------------------------------

    /// True when `t` supports bit-plane lane packing: single-bit transients
    /// on these structures leave golden control flow, memory addressing and
    /// timing untouched until the divergence monitor forks the lane out.
    pub fn lane_packable(t: Target) -> bool {
        matches!(
            t,
            Target::PrfInt | Target::PrfFp | Target::Rob | Target::L1I | Target::L1D | Target::L2
        )
    }

    /// Attach the lane-divergence overlay to the core. Must be called
    /// before any [`lane_arm`](Self::lane_arm); the overlay is purely
    /// observational (the data plane keeps executing the golden run).
    pub fn lane_begin(&mut self) {
        self.core.lane_begin();
    }

    /// Detach the lane overlay and clear all cache lane monitors.
    pub fn lane_end(&mut self) {
        self.core.lane_end();
    }

    /// Arm `lane` with a single-bit transient on `t` at bit `bit`,
    /// returning the arm-time fate (e.g. `InvalidAtInjection` for a flip
    /// landing in an invalid cache line). No data-plane state changes.
    pub fn lane_arm(&mut self, lane: u8, t: Target, bit: u64) -> FaultFate {
        assert!(bit < self.bit_len(t), "bit {bit} out of range for {}", t.name());
        match t {
            Target::PrfInt => self.core.lane_arm_prf(lane, false, bit),
            Target::PrfFp => self.core.lane_arm_prf(lane, true, bit),
            Target::Rob => self.core.lane_arm_rob(lane, bit),
            Target::L1I => {
                let f = self.core.l1i.lane_arm(lane, bit);
                self.core.lane_note_cache_arm(lane, f);
                f
            }
            Target::L1D => {
                let f = self.core.l1d.lane_arm(lane, bit);
                self.core.lane_note_cache_arm(lane, f);
                f
            }
            Target::L2 => {
                let f = self.core.l2.lane_arm(lane, bit);
                self.core.lane_note_cache_arm(lane, f);
                f
            }
            _ => unreachable!("{} is not lane-packable", t.name()),
        }
    }

    /// Drain lane fork/fate/divergence events accumulated since the last
    /// drain (including cache-monitor events folded through the core).
    pub fn lane_drain_events(&mut self) -> Vec<LaneEvent> {
        self.core.lane_drain_events()
    }

    /// The live lane-divergence overlay, when armed.
    pub fn lane_engine(&self) -> Option<&LaneEngine> {
        self.core.lane_engine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marvel_ir::{assemble, FuncBuilder, Module};
    use marvel_isa::{AluOp, Isa};

    fn hello_module() -> Module {
        let mut m = Module::new();
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let x = b.bin(AluOp::Add, 40, 2);
        b.out_byte(x);
        b.halt();
        m.define(f, b.build());
        m
    }

    #[test]
    fn run_program_on_soc() {
        for isa in Isa::ALL {
            let bin = assemble(&hello_module(), isa).unwrap();
            let mut sys = System::new(CoreConfig::table2(isa));
            sys.load_binary(&bin);
            let out = sys.run(1_000_000);
            assert!(matches!(out, RunOutcome::Halted { .. }), "{isa}: {out:?}");
            assert_eq!(sys.output(), &[42]);
        }
    }

    #[test]
    fn checkpoint_clone_restores_state() {
        let isa = Isa::RiscV;
        let mut m = Module::new();
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let x = b.li(7);
        b.checkpoint();
        let y = b.bin(AluOp::Mul, x, 6);
        b.out_byte(y);
        b.halt();
        m.define(f, b.build());
        let bin = assemble(&m, isa).unwrap();
        let mut sys = System::new(CoreConfig::table2(isa));
        sys.load_binary(&bin);
        assert_eq!(sys.run_to_checkpoint(1_000_000), SysEvent::Checkpoint);
        let ckpt = sys.clone();
        // Run the original and a restored copy; identical outcomes.
        let o1 = sys.run(1_000_000);
        let mut restored = ckpt.clone();
        let o2 = restored.run(1_000_000);
        assert_eq!(o1, o2);
        assert_eq!(sys.output(), restored.output());
        assert_eq!(sys.output(), &[42]);
        // Determinism extends to cycle counts.
        assert_eq!(sys.cycle, restored.cycle);
    }

    #[test]
    fn dirty_reset_matches_clone_restore() {
        let isa = Isa::RiscV;
        let mut m = Module::new();
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let x = b.li(7);
        b.checkpoint();
        let y = b.bin(AluOp::Mul, x, 6);
        b.out_byte(y);
        b.halt();
        m.define(f, b.build());
        let bin = assemble(&m, isa).unwrap();
        let mut sys = System::new(CoreConfig::table2(isa));
        sys.load_binary(&bin);
        assert_eq!(sys.run_to_checkpoint(1_000_000), SysEvent::Checkpoint);
        let ckpt = sys;
        // Reference: a fresh clone per run.
        let mut cloned = ckpt.clone();
        let o_ref = cloned.run(1_000_000);
        // Reusable worker system: run, dirty-reset, run again — both runs
        // and the post-reset state must match the clone path exactly.
        let mut worker = ckpt.clone();
        worker.enable_dirty_tracking();
        let o1 = worker.run(1_000_000);
        assert_eq!(o1, o_ref);
        let run_output = worker.output().to_vec();
        let bytes = worker.reset_from(&ckpt);
        assert!(bytes > 0);
        assert_eq!(worker.cycle, ckpt.cycle);
        assert_eq!(worker.output(), ckpt.output());
        let o2 = worker.run(1_000_000);
        assert_eq!(o2, o_ref);
        assert_eq!(worker.output(), &run_output[..]);
        assert_eq!(worker.cycle, cloned.cycle);
        // Faulted run followed by reset also converges back.
        worker.reset_from(&ckpt);
        worker.flip(Target::PrfInt, 5 * 64 + 1);
        let _ = worker.run(2_000_000);
        worker.reset_from(&ckpt);
        let o3 = worker.run(1_000_000);
        assert_eq!(o3, o_ref);
        assert_eq!(worker.output(), &run_output[..]);
    }

    #[test]
    fn lockstep_clean_run_has_no_divergence() {
        for isa in Isa::ALL {
            let bin = assemble(&hello_module(), isa).unwrap();
            let mut sys = System::new(CoreConfig::table2(isa));
            sys.load_binary(&bin);
            sys.enable_lockstep();
            let out = sys.run(1_000_000);
            assert!(matches!(out, RunOutcome::Halted { .. }), "{isa}: {out:?}");
            if let Some(d) = sys.lockstep_divergence() {
                panic!("{isa}: {d}");
            }
            assert!(sys.lockstep_checked() > 0, "{isa}: oracle never ran");
            // The reference machine saw the same console bytes.
            assert_eq!(sys.lockstep.as_deref().unwrap().ref_console(), sys.output());
        }
    }

    #[test]
    fn lockstep_catches_injected_corruption() {
        // A PRF flip that causes an SDC must surface as a divergence —
        // the oracle detecting a corrupted committed value is the
        // positive control for the whole comparison path.
        let isa = Isa::Arm;
        let mut m = Module::new();
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let mut acc = b.li(1);
        for i in 2..24 {
            acc = b.bin(AluOp::Add, acc, i as i64);
        }
        b.out_byte(acc);
        b.halt();
        m.define(f, b.build());
        let bin = assemble(&m, isa).unwrap();
        let mut found = false;
        for bit in 0..512u64 {
            let mut sys = System::new(CoreConfig::table2(isa));
            sys.load_binary(&bin);
            sys.enable_lockstep();
            for _ in 0..30 {
                sys.tick();
            }
            sys.flip(Target::PrfInt, bit);
            let out = sys.run(1_000_000);
            let sdc = matches!(out, RunOutcome::Halted { .. }) && sys.output() != [20];
            if sys.lockstep_divergence().is_some() {
                found = true;
                break;
            }
            // An SDC the oracle missed would be a real hole — but only
            // when the oracle was still active at the end.
            if sdc && sys.lockstep.as_deref().unwrap().disabled_reason().is_none() {
                panic!("bit {bit}: SDC escaped the lockstep oracle");
            }
        }
        assert!(found, "no injected fault ever produced a divergence");
    }

    #[test]
    fn bit_lens_match_table2() {
        let sys = System::new(CoreConfig::table2(Isa::Arm));
        assert_eq!(sys.bit_len(Target::PrfInt), 128 * 64);
        assert_eq!(sys.bit_len(Target::L1I), 32 * 1024 * 8);
        assert_eq!(sys.bit_len(Target::L1D), 32 * 1024 * 8);
        assert_eq!(sys.bit_len(Target::L2), 1024 * 1024 * 8);
        assert_eq!(sys.bit_len(Target::LoadQueue), 32 * 136);
        assert_eq!(sys.bit_len(Target::StoreQueue), 32 * 136);
    }

    #[test]
    fn prf_flip_can_cause_sdc_or_crash_or_mask() {
        // Just exercise the injection path: flip a random PRF bit mid-run
        // and require the system to terminate one way or another.
        let isa = Isa::Arm;
        let bin = assemble(&hello_module(), isa).unwrap();
        for bit in [5u64, 700, 4000] {
            let mut sys = System::new(CoreConfig::table2(isa));
            sys.load_binary(&bin);
            for _ in 0..20 {
                sys.tick();
            }
            sys.flip(Target::PrfInt, bit);
            let out = sys.run(2_000_000);
            assert!(!matches!(out, RunOutcome::Timeout), "bit {bit}: hung");
        }
    }
}
