//! # marvel-soc
//!
//! Heterogeneous SoC composition: the out-of-order core (`marvel-cpu`),
//! hosted SALAM-style accelerators (`marvel-accel`) behind memory-mapped
//! registers and DMA, a console device, and GIC/PLIC/APIC-flavour
//! interrupt controllers — the full-system substrate the gem5-MARVEL
//! reproduction injects faults into.
//!
//! [`System`] is `Clone`: cloning is the checkpoint mechanism, capturing
//! architectural and microarchitectural state including warm caches.

pub mod hosted;
pub mod irq;
pub mod isr;
pub mod system;

pub use hosted::{DmaPlanEntry, HostedAccel};
pub use irq::{IrqController, IrqCtrlKind};
pub use system::{RunOutcome, SocBus, SysDirtyMarks, SysEvent, System, Target};
