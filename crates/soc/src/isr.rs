//! Hand-assembled interrupt service routine stubs, one per ISA flavour.
//!
//! The stub preserves the two scratch registers it uses in the red zone
//! below the stack pointer, claims the interrupt from the controller,
//! completes it, stores `source + 1` to [`IRQ_FLAG_ADDR`] for the polling
//! program, restores the registers and returns with `iret`.

use crate::irq::IrqCtrlKind;
use marvel_ir::memmap::{IRQ_CTRL_BASE, IRQ_FLAG_ADDR};
use marvel_isa::{AluOp, AsmInst, Isa, MemWidth};

/// Materialise a 32-bit absolute value into `rd` (fixed per-ISA forms).
fn mat32(isa: Isa, rd: u8, v: u64) -> Vec<AsmInst> {
    debug_assert!(v < (1 << 31));
    match isa {
        Isa::RiscV => {
            let v = v as i64;
            let hi = (v + 0x800) >> 12;
            let lo = v - (hi << 12);
            vec![
                AsmInst::Lui { rd, imm20: hi as i32 },
                AsmInst::AluRI { op: AluOp::Add, rd, rn: rd, imm: lo },
            ]
        }
        Isa::Arm => vec![
            AsmInst::MovZ { rd, imm16: v as u16, hw: 0 },
            AsmInst::MovK { rd, imm16: (v >> 16) as u16, hw: 1 },
        ],
        Isa::X86 => vec![AsmInst::MovImm64 { rd, imm: v as i64 }],
    }
}

/// Build the ISR machine code for `isa` and the given controller flavour.
pub fn build_isr(isa: Isa, kind: IrqCtrlKind) -> Vec<u8> {
    let spec = isa.reg_spec();
    let (s0, s1) = (spec.scratch[0], spec.scratch[1]);
    let sp = spec.sp;
    let mut insts: Vec<AsmInst> = Vec::new();
    // Save scratch registers in the red zone.
    insts.push(AsmInst::Store { w: MemWidth::D, rs: s0, base: sp, offset: -8 });
    insts.push(AsmInst::Store { w: MemWidth::D, rs: s1, base: sp, offset: -16 });
    // Claim and complete.
    insts.extend(mat32(isa, s0, IRQ_CTRL_BASE));
    insts.push(AsmInst::Load {
        w: MemWidth::D,
        signed: false,
        rd: s1,
        base: s0,
        offset: kind.claim_offset() as i32,
    });
    insts.push(AsmInst::Store {
        w: MemWidth::D,
        rs: s1,
        base: s0,
        offset: kind.complete_offset() as i32,
    });
    // Publish source + 1 to the flag word.
    insts.push(AsmInst::AluRI { op: AluOp::Add, rd: s1, rn: s1, imm: 1 });
    insts.extend(mat32(isa, s0, IRQ_FLAG_ADDR));
    insts.push(AsmInst::Store { w: MemWidth::D, rs: s1, base: s0, offset: 0 });
    // Restore and return.
    insts.push(AsmInst::Load { w: MemWidth::D, signed: false, rd: s0, base: sp, offset: -8 });
    insts.push(AsmInst::Load { w: MemWidth::D, signed: false, rd: s1, base: sp, offset: -16 });
    insts.push(AsmInst::Iret);

    let mut out = Vec::new();
    for i in &insts {
        out.extend(isa.encode(i).expect("ISR instructions always encodable"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isr_encodes_and_decodes_for_all_isas() {
        for isa in Isa::ALL {
            let kind = IrqCtrlKind::for_isa(isa);
            let code = build_isr(isa, kind);
            assert!(!code.is_empty());
            // Every instruction must decode back.
            let mut pc = 0;
            let mut n = 0;
            let mut saw_iret = false;
            while pc < code.len() {
                let d = isa.decode(&code[pc..]).unwrap_or_else(|e| panic!("{isa}: {e:?} at {pc}"));
                if d.uops.as_slice().iter().any(|u| u.op == marvel_isa::Op::Iret) {
                    saw_iret = true;
                }
                pc += d.len as usize;
                n += 1;
            }
            assert!(saw_iret, "{isa}: ISR must end in iret");
            assert!(n >= 9, "{isa}: suspiciously short ISR");
        }
    }

    #[test]
    fn isr_fits_the_vector_page() {
        for isa in Isa::ALL {
            let code = build_isr(isa, IrqCtrlKind::for_isa(isa));
            assert!(code.len() < 0x200, "{isa}: ISR too large");
        }
    }
}
