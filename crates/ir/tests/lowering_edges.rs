//! Lowering/assembly edge cases, executed through the interpreter-vs-ISA
//! differential lens where possible (structure-only otherwise).

use marvel_ir::{assemble, interp, FuncBuilder, Module, Value};
use marvel_isa::{AluOp, Cond, Isa, MemWidth};

fn outputs_match_on_all_isas(m: &Module) {
    // Structural check here: assembles and decodes; execution equivalence
    // is covered by the cpu crate's differential tests.
    let golden = interp::run(m, 50_000_000).expect("interpreter");
    assert!(!golden.output.is_empty());
    for isa in Isa::ALL {
        let bin = assemble(m, isa).unwrap_or_else(|e| panic!("{isa}: {e}"));
        assert!(bin.code_len > 0);
        // The entry must decode.
        isa.decode(&bin.image[..16.min(bin.image.len())]).unwrap();
    }
}

#[test]
fn large_immediates_all_ranges() {
    let mut m = Module::new();
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let acc = b.li(0);
    for imm in [
        1i64,
        255,
        256, // beyond Arm imm9
        2047,
        2048, // beyond RISC-V imm12
        65535,
        65536,
        0x7FFF_FFFF,
        0x8000_0000, // beyond i32 (unsigned-32 path)
        0xFFFF_FFFF, // u32 max
        -1,
        -2049,
        -40_000,
    ] {
        let v = b.bin(AluOp::Add, acc, imm);
        let x = b.bin(AluOp::Xor, v, 0x5A);
        b.assign(acc, x);
    }
    b.out_byte(acc);
    b.halt();
    m.define(f, b.build());
    outputs_match_on_all_isas(&m);
}

#[test]
fn sixty_four_bit_constants() {
    let mut m = Module::new();
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let k = b.li(0x1234_5678_9ABC_DEF0u64 as i64);
    let lo = b.bin(AluOp::And, k, 0xFF);
    b.out_byte(lo); // 0xF0
    let hi = b.bin(AluOp::Srl, k, 56);
    b.out_byte(hi); // 0x12
    let neg = b.li(-0x7654_3210_0123_4567i64);
    let nl = b.bin(AluOp::And, neg, 0xFF);
    b.out_byte(nl);
    b.halt();
    m.define(f, b.build());
    outputs_match_on_all_isas(&m);
}

#[test]
fn big_frame_offsets() {
    // Enough simultaneously-live values to push spill slots past the Arm
    // scaled-imm9 direct range, forcing the scratch-addressing fallback.
    let mut m = Module::new();
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let vals: Vec<_> = (0..300i64).map(|i| b.li(i * 11)).collect();
    let mut acc = b.li(0);
    for v in &vals {
        acc = b.bin(AluOp::Add, acc, *v);
    }
    b.out_byte(acc);
    b.halt();
    m.define(f, b.build());
    outputs_match_on_all_isas(&m);
}

#[test]
fn deep_call_chain_and_many_args() {
    let mut m = Module::new();
    // f(a,b,c,d,e,g) = a+2b+3c+4d+5e+6g
    let f6 = m.declare("f6", 6);
    let main = m.declare("main", 0);
    let mut b = FuncBuilder::new(6);
    let mut acc = b.li(0);
    for i in 0..6u32 {
        let p = b.param(i);
        let scaled = b.bin(AluOp::Mul, p, (i + 1) as i64);
        acc = b.bin(AluOp::Add, acc, scaled);
    }
    b.ret(Some(Value::Reg(acc)));
    m.define(f6, b.build());

    let mut b = FuncBuilder::new(0);
    let r = b.call(
        f6,
        &[Value::Imm(1), Value::Imm(2), Value::Imm(3), Value::Imm(4), Value::Imm(5), Value::Imm(6)],
    );
    b.out_byte(r); // 1+4+9+16+25+36 = 91
    b.halt();
    m.define(main, b.build());
    let golden = interp::run(&m, 1_000_000).unwrap();
    assert_eq!(golden.output, vec![91]);
    outputs_match_on_all_isas(&m);
}

#[test]
fn deep_recursion_fits_stack() {
    // 400-deep recursion: every frame saves its used registers; the sum
    // 1+..+400 = 80200 must come back intact.
    let mut m = Module::new();
    let rec = m.declare("rec", 1);
    let main = m.declare("main", 0);
    let mut b = FuncBuilder::new(1);
    let n = b.param(0);
    let l = b.new_label();
    b.br(Cond::Ne, n, 0, l);
    b.ret(Some(Value::Imm(0)));
    b.bind(l);
    let n1 = b.bin(AluOp::Sub, n, 1);
    let r = b.call(rec, &[Value::Reg(n1)]);
    let s = b.bin(AluOp::Add, r, n);
    b.ret(Some(Value::Reg(s)));
    m.define(rec, b.build());

    let mut b = FuncBuilder::new(0);
    let r = b.call(rec, &[Value::Imm(400)]);
    b.out_byte(r);
    let hi = b.bin(AluOp::Srl, r, 8);
    b.out_byte(hi);
    b.halt();
    m.define(main, b.build());
    let golden = interp::run(&m, 10_000_000).unwrap();
    assert_eq!(golden.output, vec![(80200u32 & 0xFF) as u8, ((80200u32 >> 8) & 0xFF) as u8]);
    outputs_match_on_all_isas(&m);
}

#[test]
fn memwidth_store_load_all_widths_via_idx() {
    let mut m = Module::new();
    let buf = m.global_zeroed("buf", 64, 8);
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let base = b.addr_of(buf);
    for (w, val) in [
        (MemWidth::B, 0xABi64),
        (MemWidth::H, 0xBEEF),
        (MemWidth::W, 0x1234_5678),
        (MemWidth::D, 0x0102_0304_0506_0708),
    ] {
        let i = b.li(2);
        b.store_idx(w, val, base, i);
        let v = b.load_idx(w, false, base, i);
        b.out_byte(v);
    }
    b.halt();
    m.define(f, b.build());
    let golden = interp::run(&m, 1_000_000).unwrap();
    assert_eq!(golden.output, vec![0xAB, 0xEF, 0x78, 0x08]);
    outputs_match_on_all_isas(&m);
}
