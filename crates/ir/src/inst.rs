//! The portable intermediate representation.
//!
//! Workloads are written once against this IR and compiled to each ISA
//! flavour, mirroring the paper's per-ISA GCC builds of MiBench: the same
//! source produces *different binaries* per ISA (different instruction
//! counts, register pressure and code footprints), which is what drives the
//! cross-ISA vulnerability differences.

use marvel_isa::{AluOp, Cond, MemWidth};

/// Virtual register: unlimited supply per function.
pub type VReg = u32;
/// Branch target label, local to a function.
pub type Label = u32;
/// Function index within a [`crate::Module`].
pub type FuncId = usize;
/// Global (data object) index within a [`crate::Module`].
pub type GlobalId = usize;

/// An IR operand: a virtual register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    Reg(VReg),
    Imm(i64),
}

impl From<VReg> for Value {
    fn from(r: VReg) -> Self {
        Value::Reg(r)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Imm(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Imm(v as i64)
    }
}

/// One IR instruction. Three-address code over virtual registers; control
/// flow uses labels bound with [`IrInst::Bind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrInst {
    /// `dst = a <op> b`
    Bin {
        op: AluOp,
        dst: VReg,
        a: Value,
        b: Value,
    },
    /// `dst = mem[base + offset]`
    Load {
        w: MemWidth,
        signed: bool,
        dst: VReg,
        base: Value,
        offset: i64,
    },
    /// `mem[base + offset] = src`
    Store {
        w: MemWidth,
        src: Value,
        base: Value,
        offset: i64,
    },
    /// `dst = mem[base + index * w.bytes()]` — lowered to register-offset
    /// addressing on the Arm flavour, shift+add+load elsewhere.
    LoadIdx {
        w: MemWidth,
        signed: bool,
        dst: VReg,
        base: Value,
        index: Value,
    },
    /// `mem[base + index * w.bytes()] = src`
    StoreIdx {
        w: MemWidth,
        src: Value,
        base: Value,
        index: Value,
    },
    /// `dst = &global`
    AddrOf {
        dst: VReg,
        global: GlobalId,
    },
    /// `if cond(a, b): goto target`
    Br {
        cond: Cond,
        a: Value,
        b: Value,
        target: Label,
    },
    /// `goto target`
    Jump {
        target: Label,
    },
    /// Bind `label` at this point.
    Bind {
        label: Label,
    },
    /// Call `func(args...)`, optionally receiving a return value.
    Call {
        func: FuncId,
        args: Vec<Value>,
        dst: Option<VReg>,
    },
    /// Return from the current function.
    Ret {
        val: Option<Value>,
    },
    /// End simulation.
    Halt,
    /// Checkpoint marker (`m5_checkpoint()` analogue).
    Checkpoint,
    /// Injection-window end marker (`m5_switch_cpu()` analogue).
    SwitchCpu,
    Nop,
}

impl IrInst {
    /// Virtual register defined by this instruction, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            IrInst::Bin { dst, .. }
            | IrInst::Load { dst, .. }
            | IrInst::LoadIdx { dst, .. }
            | IrInst::AddrOf { dst, .. } => Some(*dst),
            IrInst::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Virtual registers read by this instruction.
    pub fn uses(&self) -> Vec<VReg> {
        fn push(v: &Value, out: &mut Vec<VReg>) {
            if let Value::Reg(r) = v {
                out.push(*r);
            }
        }
        let mut out = Vec::new();
        match self {
            IrInst::Bin { a, b, .. } => {
                push(a, &mut out);
                push(b, &mut out);
            }
            IrInst::Load { base, .. } => push(base, &mut out),
            IrInst::Store { src, base, .. } => {
                push(src, &mut out);
                push(base, &mut out);
            }
            IrInst::LoadIdx { base, index, .. } => {
                push(base, &mut out);
                push(index, &mut out);
            }
            IrInst::StoreIdx { src, base, index, .. } => {
                push(src, &mut out);
                push(base, &mut out);
                push(index, &mut out);
            }
            IrInst::Br { a, b, .. } => {
                push(a, &mut out);
                push(b, &mut out);
            }
            IrInst::Call { args, .. } => {
                for a in args {
                    push(a, &mut out);
                }
            }
            IrInst::Ret { val: Some(v) } => push(v, &mut out),
            _ => {}
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defs_and_uses() {
        let i = IrInst::Bin { op: AluOp::Add, dst: 3, a: Value::Reg(1), b: Value::Imm(5) };
        assert_eq!(i.def(), Some(3));
        assert_eq!(i.uses(), vec![1]);

        let s = IrInst::StoreIdx {
            w: MemWidth::W,
            src: Value::Reg(1),
            base: Value::Reg(2),
            index: Value::Reg(3),
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![1, 2, 3]);
    }

    #[test]
    fn value_from_impls() {
        assert_eq!(Value::from(3u32), Value::Reg(3));
        assert_eq!(Value::from(-1i64), Value::Imm(-1));
    }
}
