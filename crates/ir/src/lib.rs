//! # marvel-ir
//!
//! The portable intermediate representation and compiler used to build the
//! framework's workloads once and run them on all three ISA flavours —
//! the analogue of the paper's per-ISA GCC builds of MiBench.
//!
//! Pipeline:
//!
//! 1. Build a [`Module`] with [`FuncBuilder`] (three-address code over
//!    virtual registers, labels, calls, globals).
//! 2. [`assemble`](fn@assemble) it for an [`marvel_isa::Isa`]: usage-priority register
//!    allocation, per-ISA instruction selection (addressing modes,
//!    immediate ranges, two-operand constraints), two-pass layout with
//!    branch relaxation, and encoding into a loadable [`Binary`].
//! 3. Optionally [`interp::run`] the module for the golden (ISA-agnostic)
//!    output used in differential tests.
//!
//! ```
//! use marvel_ir::{Module, FuncBuilder, assemble, interp};
//! use marvel_isa::{AluOp, Isa};
//!
//! let mut m = Module::new();
//! let main = m.declare("main", 0);
//! let mut b = FuncBuilder::new(0);
//! let v = b.bin(AluOp::Mul, 6i64, 7i64);
//! b.out_byte(v);
//! b.halt();
//! m.define(main, b.build());
//!
//! let golden = interp::run(&m, 1_000)?;
//! assert_eq!(golden.output, vec![42]);
//! let bin = assemble(&m, Isa::RiscV)?;
//! assert!(bin.code_len > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod assemble;
pub mod inst;
pub mod interp;
pub mod lower;
pub mod memmap;
pub mod module;
pub mod opt;

pub use assemble::{assemble, Binary};
pub use inst::{FuncId, GlobalId, IrInst, Label, VReg, Value};
pub use lower::{lower, Item, LowerError, Lowered};
pub use module::{FuncBody, FuncBuilder, Function, Global, Module};
pub use opt::{optimize, OptStats};
