//! Lowering: portable IR → per-ISA assembler items.
//!
//! Register allocation is usage-priority based: within each function, the
//! most frequently referenced virtual registers get dedicated physical
//! registers for the function's whole lifetime; the rest live in stack
//! slots. The calling convention is fully callee-saved (the callee saves
//! every physical register it uses), so homes survive calls.
//!
//! This deliberately models `-O0`-grade code (the paper compiles its
//! validation programs with `-O0`): x86's 11 allocatable registers force
//! far more stack traffic than Arm's 25 or RISC-V's 22, and RISC-V's
//! poorer addressing modes cost extra address-computation instructions —
//! the honest mechanisms behind the paper's cross-ISA observations.
//!
//! Frame layout (offsets from the in-body stack pointer, downward-growing
//! stack):
//!
//! ```text
//!   [0 .. 8*max_out_args)   outgoing argument area
//!   [.. + 8*n_saved)        callee-saved register area
//!   [.. + 8*n_slots)        spill slots (stack-homed vregs)
//! ```
//!
//! Incoming argument `i` lives at `sp + frame + bias + 8*i`, where `bias`
//! is 8 on the x86 flavour (the return address pushed by `call`) and 0
//! elsewhere.

use crate::inst::{FuncId, GlobalId, IrInst, Value};
use crate::memmap::STACK_TOP;
use crate::module::Module;
use marvel_isa::{AluOp, AsmInst, Cond, EncodeError, Isa, MemWidth, RegSpec};

/// A lowered item: either a concrete instruction or a late-bound one
/// (branches, calls, global-address materialisations) resolved at assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    Inst(AsmInst),
    /// Label definition point (global key).
    Label(u32),
    /// Conditional branch to a label; may be relaxed into an inverted
    /// branch over an unconditional jump if the offset overflows.
    Br {
        cond: Cond,
        rn: u8,
        rm: u8,
        target: u32,
    },
    /// Unconditional jump to a label.
    Jmp {
        target: u32,
    },
    /// Call to a function (offset patched at assembly).
    CallF {
        func: FuncId,
    },
    /// Materialise the absolute address of a global into `rd`
    /// (fixed-length per ISA; the value is known only after data layout).
    AddrOf {
        rd: u8,
        global: GlobalId,
    },
}

/// Errors produced during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    Encode(EncodeError),
    Validate(String),
    /// A shift immediate outside 0..64 reached lowering.
    BadShift(i64),
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::Encode(e) => write!(f, "encode error: {e}"),
            LowerError::Validate(s) => write!(f, "invalid module: {s}"),
            LowerError::BadShift(v) => write!(f, "shift amount {v} out of range"),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<EncodeError> for LowerError {
    fn from(e: EncodeError) -> Self {
        LowerError::Encode(e)
    }
}

/// Where a virtual register lives for the whole function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Home {
    Phys(u8),
    /// Index into the spill-slot area.
    Slot(u32),
}

/// Output of lowering a whole module: a flat item stream (functions
/// concatenated, `_start` first) plus label/function metadata.
#[derive(Debug, Clone)]
pub struct Lowered {
    pub isa: Isa,
    pub items: Vec<Item>,
    /// Item index at which each function starts.
    pub func_item_starts: Vec<usize>,
    pub n_labels: u32,
}

/// Lower every function of `module` for `isa`.
///
/// # Errors
/// Returns [`LowerError`] if the module fails validation or an operand
/// cannot be encoded.
pub fn lower(module: &Module, isa: Isa) -> Result<Lowered, LowerError> {
    module.validate().map_err(LowerError::Validate)?;
    let mut ctx = ModCtx { isa, spec: isa.reg_spec(), items: Vec::new(), next_label: 0 };

    // Synthesised `_start`: set up the stack and call main.
    let start_idx = ctx.items.len();
    let sp = ctx.spec.sp;
    ctx.emit_const(sp, STACK_TOP as i64, ctx.spec.scratch[0]);
    ctx.items.push(Item::CallF { func: module.main_id() });
    ctx.items.push(Item::Inst(AsmInst::Halt));

    let mut starts = vec![0usize; module.funcs.len()];
    for (fid, _) in module.funcs.iter().enumerate() {
        starts[fid] = ctx.items.len();
        lower_func(&mut ctx, module, fid)?;
    }
    let mut func_item_starts = starts;
    // `_start` is conceptually function "entry": expose via index 0 of the
    // item stream instead; callers use `Lowered::items` + starts.
    let _ = start_idx;
    Ok(Lowered {
        isa,
        items: ctx.items,
        func_item_starts: std::mem::take(&mut func_item_starts),
        n_labels: ctx.next_label,
    })
}

struct ModCtx {
    isa: Isa,
    spec: &'static RegSpec,
    items: Vec<Item>,
    next_label: u32,
}

impl ModCtx {
    fn fresh_label(&mut self) -> u32 {
        let l = self.next_label;
        self.next_label += 1;
        l
    }

    fn inst(&mut self, i: AsmInst) {
        self.items.push(Item::Inst(i));
    }

    /// Register-register move (no-op when same register).
    fn mov(&mut self, rd: u8, rs: u8) {
        if rd != rs {
            self.inst(AsmInst::MovRR { rd, rs });
        }
    }

    /// Materialise `v` into `rd`. `helper` must be a free scratch register
    /// distinct from `rd` (only used for >32-bit constants on RISC-V).
    fn emit_const(&mut self, rd: u8, v: i64, helper: u8) {
        match self.isa {
            Isa::X86 => {
                if v == 0 {
                    self.inst(AsmInst::AluRR { op: AluOp::Xor, rd, rn: rd, rm: rd });
                } else {
                    self.inst(AsmInst::MovImm64 { rd, imm: v });
                }
            }
            Isa::Arm => {
                // movz + movk chain over non-matching 16-bit chunks.
                let neg = v < 0;
                let base: u16 = if neg { 0xFFFF } else { 0 };
                // movn-style base: start from all-ones for negatives.
                let mut first = true;
                for hw in 0..4u8 {
                    let chunk = ((v as u64) >> (16 * hw)) as u16;
                    if first {
                        // Initial movz must establish the base pattern.
                        if neg {
                            // No movn in the mini-ISA: movz 0xFFFF at hw3
                            // then movk downward gives at most 4 insts.
                            continue;
                        }
                        if chunk != 0 || hw == 3 {
                            self.inst(AsmInst::MovZ { rd, imm16: chunk, hw });
                            first = false;
                        }
                    } else if chunk != base {
                        self.inst(AsmInst::MovK { rd, imm16: chunk, hw });
                    }
                }
                if neg {
                    // movz the *actual* top chunk (not a hardwired 0xFFFF:
                    // negatives below -2^48 have other patterns up there),
                    // then movk the non-zero lower chunks — still <= 4 insts.
                    let top = ((v as u64) >> 48) as u16;
                    self.inst(AsmInst::MovZ { rd, imm16: top, hw: 3 });
                    for hw in (0..3u8).rev() {
                        let chunk = ((v as u64) >> (16 * hw)) as u16;
                        if chunk != 0 {
                            self.inst(AsmInst::MovK { rd, imm16: chunk, hw });
                        }
                    }
                } else if first {
                    self.inst(AsmInst::MovZ { rd, imm16: 0, hw: 0 });
                }
            }
            Isa::RiscV => {
                if (-2048..2048).contains(&v) {
                    self.inst(AsmInst::AluRI { op: AluOp::Add, rd, rn: 0, imm: v });
                } else if (i32::MIN as i64..=i32::MAX as i64).contains(&v) {
                    self.emit_const32_rv(rd, v as i32);
                } else if (0..=u32::MAX as i64).contains(&v) {
                    // Unsigned 32-bit: build sign-extended then zero-extend
                    // in place — no helper register needed (helpers may
                    // alias live operand scratches at some call sites).
                    self.emit_const32_rv(rd, v as u32 as i32);
                    self.inst(AsmInst::AluRI { op: AluOp::Sll, rd, rn: rd, imm: 32 });
                    self.inst(AsmInst::AluRI { op: AluOp::Srl, rd, rn: rd, imm: 32 });
                } else {
                    debug_assert_ne!(rd, helper, "emit_const needs a distinct helper");
                    let hi = v >> 32;
                    let lo = v as u32;
                    self.emit_const32_rv(rd, hi as i32);
                    self.inst(AsmInst::AluRI { op: AluOp::Sll, rd, rn: rd, imm: 32 });
                    self.emit_const32_rv(helper, lo as i32);
                    if (lo as i32) < 0 {
                        // zero-extend helper (it was sign-extended).
                        self.inst(AsmInst::AluRI { op: AluOp::Sll, rd: helper, rn: helper, imm: 32 });
                        self.inst(AsmInst::AluRI { op: AluOp::Srl, rd: helper, rn: helper, imm: 32 });
                    }
                    self.inst(AsmInst::AluRR { op: AluOp::Or, rd, rn: rd, rm: helper });
                }
            }
        }
    }

    /// RISC-V `lui`+`addi` producing `rd = sext32(v)`, with wrapped-lui
    /// semantics so every 32-bit pattern is materialisable (values near
    /// `i32::MAX` overflow a naive `(v + 0x800) >> 12` split — the classic
    /// RV64 `li` corner case).
    fn emit_const32_rv(&mut self, rd: u8, v: i32) {
        let w = v as u32;
        let mut lo = (w & 0xFFF) as i64;
        if lo >= 2048 {
            lo -= 4096;
        }
        let hi20 = (w.wrapping_sub(lo as u32) >> 12) & 0xF_FFFF;
        if hi20 == 0 {
            self.inst(AsmInst::AluRI { op: AluOp::Add, rd, rn: 0, imm: lo });
        } else {
            // Interpret the 20-bit pattern as the (signed) lui immediate.
            let imm20 = if hi20 >= 0x8_0000 { hi20 as i64 - 0x10_0000 } else { hi20 as i64 };
            self.inst(AsmInst::Lui { rd, imm20: imm20 as i32 });
            if lo != 0 {
                self.inst(AsmInst::AluRI { op: AluOp::Add, rd, rn: rd, imm: lo });
            }
        }
    }

    /// `rd = rs + c` handling immediate-range overflow. `helper` must be
    /// free and distinct from `rs`.
    fn emit_add_const(&mut self, rd: u8, rs: u8, c: i64, helper: u8) {
        if c == 0 {
            self.mov(rd, rs);
            return;
        }
        let fits = match self.isa {
            Isa::X86 => (i32::MIN as i64..=i32::MAX as i64).contains(&c),
            Isa::Arm => (-256..256).contains(&c),
            Isa::RiscV => (-2048..2048).contains(&c),
        };
        if fits {
            self.alu_ri(AluOp::Add, rd, rs, c);
        } else {
            debug_assert_ne!(helper, rs);
            self.emit_const(helper, c, rd.max(helper)); // helper's helper unused (<2^31 offsets)
            self.alu_rr(AluOp::Add, rd, rs, helper, helper);
        }
    }

    /// ALU reg-imm respecting the x86 two-operand constraint.
    fn alu_ri(&mut self, op: AluOp, rd: u8, rn: u8, imm: i64) {
        if self.isa == Isa::X86 {
            self.mov(rd, rn);
            self.inst(AsmInst::AluRI { op, rd, rn: rd, imm });
        } else {
            self.inst(AsmInst::AluRI { op, rd, rn, imm });
        }
    }

    /// ALU reg-reg respecting the x86 two-operand constraint. `tmp` must be
    /// a register the caller does not need (used only when `rd == rm` on a
    /// non-commutative op on x86).
    fn alu_rr(&mut self, op: AluOp, rd: u8, rn: u8, rm: u8, tmp: u8) {
        if self.isa != Isa::X86 {
            self.inst(AsmInst::AluRR { op, rd, rn, rm });
            return;
        }
        let commutative = matches!(op, AluOp::Add | AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Mul);
        if rd == rn {
            self.inst(AsmInst::AluRR { op, rd, rn: rd, rm });
        } else if rd == rm {
            if commutative {
                self.inst(AsmInst::AluRR { op, rd, rn: rd, rm: rn });
            } else {
                debug_assert!(tmp != rn && tmp != rd);
                self.mov(tmp, rm);
                self.mov(rd, rn);
                self.inst(AsmInst::AluRR { op, rd, rn: rd, rm: tmp });
            }
        } else {
            self.mov(rd, rn);
            self.inst(AsmInst::AluRR { op, rd, rn: rd, rm });
        }
    }

    /// Whether `imm` is directly usable as the RHS of `op` on this ISA.
    fn imm_fits(&self, op: AluOp, imm: i64) -> bool {
        match op {
            AluOp::Sll | AluOp::Srl | AluOp::Sra => (0..64).contains(&imm),
            AluOp::Mul | AluOp::Div | AluOp::Rem => false,
            _ => match self.isa {
                Isa::X86 => (i32::MIN as i64..=i32::MAX as i64).contains(&imm),
                Isa::Arm => (-256..256).contains(&imm),
                Isa::RiscV => (-2048..2048).contains(&imm),
            },
        }
    }

    /// Whether `offset` fits the ISA's load/store immediate form for `w`.
    fn mem_off_fits(&self, w: MemWidth, offset: i64) -> bool {
        match self.isa {
            Isa::X86 => (i32::MIN as i64..=i32::MAX as i64).contains(&offset),
            Isa::RiscV => (-2048..2048).contains(&offset),
            Isa::Arm => {
                let b = w.bytes() as i64;
                offset % b == 0 && (-256..256).contains(&(offset / b))
            }
        }
    }
}

struct FnCtx<'a> {
    homes: Vec<Home>,
    out_area: i64,
    save_offs: Vec<(u8, i64)>,
    slot_base: i64,
    epilogue: u32,
    /// Per-function label → global label key.
    label_keys: &'a [u32],
    has_calls: bool,
}

impl FnCtx<'_> {
    fn slot_off(&self, idx: u32) -> i64 {
        self.slot_base + 8 * idx as i64
    }
}

fn invert(c: Cond) -> Cond {
    match c {
        Cond::Eq => Cond::Ne,
        Cond::Ne => Cond::Eq,
        Cond::Lt => Cond::Ge,
        Cond::Ge => Cond::Lt,
        Cond::Ltu => Cond::Geu,
        Cond::Geu => Cond::Ltu,
    }
}

fn lower_func(ctx: &mut ModCtx, module: &Module, fid: FuncId) -> Result<(), LowerError> {
    let f = &module.funcs[fid];
    let spec = ctx.spec;
    let (s0, s1, s2) = (spec.scratch[0], spec.scratch[1], spec.scratch[2]);

    // --- usage counts ---
    let mut counts = vec![0u32; f.n_vregs as usize];
    for inst in &f.insts {
        if let Some(d) = inst.def() {
            counts[d as usize] += 1;
        }
        for u in inst.uses() {
            counts[u as usize] += 1;
        }
    }
    // Parameters get a small boost so they tend to live in registers.
    for p in 0..f.n_params {
        counts[p as usize] += 1;
    }

    // --- home assignment: top-K by usage get physical registers ---
    let mut order: Vec<u32> = (0..f.n_vregs).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(counts[v as usize]));
    let mut homes = vec![Home::Slot(0); f.n_vregs as usize];
    let mut next_slot = 0u32;
    let mut used_phys: Vec<u8> = Vec::new();
    for (rank, &v) in order.iter().enumerate() {
        if counts[v as usize] == 0 {
            homes[v as usize] = Home::Slot(next_slot);
            next_slot += 1;
            continue;
        }
        if rank < spec.allocatable.len() {
            let p = spec.allocatable[rank];
            homes[v as usize] = Home::Phys(p);
            used_phys.push(p);
        } else {
            homes[v as usize] = Home::Slot(next_slot);
            next_slot += 1;
        }
    }

    let has_calls = f.insts.iter().any(|i| matches!(i, IrInst::Call { .. }));
    let max_out_args = f
        .insts
        .iter()
        .filter_map(|i| match i {
            IrInst::Call { args, .. } => Some(args.len()),
            _ => None,
        })
        .max()
        .unwrap_or(0) as i64;

    // Callee-saved set: every allocated physical home + the link register
    // (if this function makes calls on a link-register ISA).
    let mut save_set = used_phys.clone();
    if has_calls {
        if let Some(link) = spec.link {
            save_set.push(link);
        }
    }
    save_set.sort_unstable();
    save_set.dedup();

    let out_area = 8 * max_out_args;
    let save_base = out_area;
    let save_offs: Vec<(u8, i64)> =
        save_set.iter().enumerate().map(|(i, &r)| (r, save_base + 8 * i as i64)).collect();
    let slot_base = save_base + 8 * save_set.len() as i64;
    let mut frame = slot_base + 8 * next_slot as i64;
    frame = (frame + 15) & !15;

    // Global label keys for this function's labels + epilogue.
    let label_keys: Vec<u32> = (0..f.n_labels).map(|_| ctx.fresh_label()).collect();
    let epilogue = ctx.fresh_label();

    let fx =
        FnCtx { homes, out_area, save_offs, slot_base, epilogue, label_keys: &label_keys, has_calls };

    let arg_bias: i64 = if ctx.isa == Isa::X86 { 8 } else { 0 };

    // --- prologue ---
    ctx.emit_add_const(spec.sp, spec.sp, -frame, s0);
    for &(r, off) in &fx.save_offs {
        frame_store(ctx, r, off);
    }
    // Copy incoming stack arguments into their homes.
    for p in 0..f.n_params {
        let in_off = frame + arg_bias + 8 * p as i64;
        match fx.homes[p as usize] {
            Home::Phys(pr) => frame_load(ctx, pr, in_off),
            Home::Slot(sl) => {
                frame_load(ctx, s0, in_off);
                frame_store(ctx, s0, fx.slot_off(sl));
            }
        }
    }

    // --- body ---
    for inst in &f.insts {
        lower_inst(ctx, &fx, inst)?;
    }

    // --- epilogue ---
    ctx.items.push(Item::Label(epilogue));
    for &(r, off) in &fx.save_offs {
        frame_load(ctx, r, off);
    }
    ctx.emit_add_const(spec.sp, spec.sp, frame, s2);
    ctx.inst(AsmInst::Ret);
    let _ = (s1, fx.has_calls);
    Ok(())
}

/// Store `reg` to `[sp + off]`, falling back to scratch-based addressing
/// when the offset does not fit (scratch `s2` is used; callers must not
/// hold live data there).
fn frame_store(ctx: &mut ModCtx, reg: u8, off: i64) {
    let sp = ctx.spec.sp;
    let s2 = ctx.spec.scratch[2];
    if ctx.mem_off_fits_ctx(off) {
        ctx.inst(AsmInst::Store { w: MemWidth::D, rs: reg, base: sp, offset: off as i32 });
    } else {
        debug_assert_ne!(reg, s2);
        ctx.emit_add_const(s2, sp, off, reg.max(s2));
        ctx.inst(AsmInst::Store { w: MemWidth::D, rs: reg, base: s2, offset: 0 });
    }
}

fn frame_load(ctx: &mut ModCtx, reg: u8, off: i64) {
    let sp = ctx.spec.sp;
    let s2 = ctx.spec.scratch[2];
    if ctx.mem_off_fits_ctx(off) {
        ctx.inst(AsmInst::Load { w: MemWidth::D, signed: false, rd: reg, base: sp, offset: off as i32 });
    } else {
        ctx.emit_add_const(s2, sp, off, s2);
        ctx.inst(AsmInst::Load { w: MemWidth::D, signed: false, rd: reg, base: s2, offset: 0 });
    }
}

impl ModCtx {
    fn mem_off_fits_ctx(&self, off: i64) -> bool {
        self.mem_off_fits(MemWidth::D, off)
    }
}

/// Read an IR value into a register: physical homes are used directly,
/// slots/immediates go through `scratch` (returned register may be either).
fn read_val(ctx: &mut ModCtx, fx: &FnCtx, v: &Value, scratch: u8, helper: u8) -> u8 {
    match v {
        Value::Reg(r) => match fx.homes[*r as usize] {
            Home::Phys(p) => p,
            Home::Slot(sl) => {
                frame_load(ctx, scratch, fx.slot_off(sl));
                scratch
            }
        },
        Value::Imm(i) => {
            if *i == 0 {
                if let Some(z) = ctx.spec.zero {
                    return z;
                }
            }
            ctx.emit_const(scratch, *i, helper);
            scratch
        }
    }
}

/// Target register for a defined vreg: the physical home, or `scratch` to
/// be stored back afterwards.
fn write_target(fx: &FnCtx, dst: u32, scratch: u8) -> (u8, Option<i64>) {
    match fx.homes[dst as usize] {
        Home::Phys(p) => (p, None),
        Home::Slot(sl) => (scratch, Some(fx.slot_off(sl))),
    }
}

fn lower_inst(ctx: &mut ModCtx, fx: &FnCtx, inst: &IrInst) -> Result<(), LowerError> {
    let spec = ctx.spec;
    let (s0, s1, s2) = (spec.scratch[0], spec.scratch[1], spec.scratch[2]);
    match inst {
        IrInst::Bin { op, dst, a, b } => {
            // Normalise: immediate on the left of a commutative op moves right.
            let (a, b) = match (a, b) {
                (Value::Imm(_), Value::Reg(_))
                    if matches!(op, AluOp::Add | AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Mul) =>
                {
                    (b, a)
                }
                _ => (a, b),
            };
            let (t, spill) = write_target(fx, *dst, s0);
            // Immediate RHS fast path (Sub imm → Add -imm on RISC-V, which
            // has no subi).
            if let Value::Imm(iv) = b {
                let (op2, iv2) = if *op == AluOp::Sub && ctx.isa == Isa::RiscV {
                    (AluOp::Add, -*iv)
                } else {
                    (*op, *iv)
                };
                if matches!(op2, AluOp::Sll | AluOp::Srl | AluOp::Sra) && !(0..64).contains(&iv2) {
                    return Err(LowerError::BadShift(iv2));
                }
                if ctx.imm_fits(op2, iv2) {
                    let ra = read_val(ctx, fx, a, s1, s2);
                    ctx.alu_ri(op2, t, ra, iv2);
                    if let Some(off) = spill {
                        frame_store(ctx, t, off);
                    }
                    return Ok(());
                }
            }
            let ra = read_val(ctx, fx, a, s1, s2);
            let rb = read_val(ctx, fx, b, s2, s1);
            ctx.alu_rr(*op, t, ra, rb, if t == s0 { s1 } else { s0 });
            if let Some(off) = spill {
                frame_store(ctx, t, off);
            }
        }
        IrInst::Load { w, signed, dst, base, offset } => {
            let rb = read_val(ctx, fx, base, s1, s2);
            let (t, spill) = write_target(fx, *dst, s0);
            if ctx.mem_off_fits(*w, *offset) {
                ctx.inst(AsmInst::Load {
                    w: *w,
                    signed: *signed,
                    rd: t,
                    base: rb,
                    offset: *offset as i32,
                });
            } else {
                ctx.emit_add_const(s2, rb, *offset, t);
                ctx.inst(AsmInst::Load { w: *w, signed: *signed, rd: t, base: s2, offset: 0 });
            }
            if let Some(off) = spill {
                frame_store(ctx, t, off);
            }
        }
        IrInst::Store { w, src, base, offset } => {
            let rb = read_val(ctx, fx, base, s0, s2);
            let rs = read_val(ctx, fx, src, s1, s2);
            if ctx.mem_off_fits(*w, *offset) {
                ctx.inst(AsmInst::Store { w: *w, rs, base: rb, offset: *offset as i32 });
            } else {
                ctx.emit_add_const(s2, rb, *offset, s2);
                ctx.inst(AsmInst::Store { w: *w, rs, base: s2, offset: 0 });
            }
        }
        IrInst::LoadIdx { w, signed, dst, base, index } => {
            let rb = read_val(ctx, fx, base, s0, s2);
            let ri = read_val(ctx, fx, index, s1, s2);
            let (t, spill) = write_target(fx, *dst, s0);
            let shift = w.bytes().trailing_zeros() as i64;
            if ctx.isa == Isa::Arm {
                // Register-offset addressing folds the index add.
                let idx_reg = if shift > 0 {
                    ctx.alu_ri(AluOp::Sll, s1, ri, shift);
                    s1
                } else {
                    ri
                };
                ctx.inst(AsmInst::LoadRR { w: *w, signed: *signed, rd: t, base: rb, index: idx_reg });
            } else {
                if shift > 0 {
                    ctx.alu_ri(AluOp::Sll, s1, ri, shift);
                } else {
                    ctx.mov(s1, ri);
                }
                ctx.alu_rr(AluOp::Add, s1, s1, rb, s2);
                ctx.inst(AsmInst::Load { w: *w, signed: *signed, rd: t, base: s1, offset: 0 });
            }
            if let Some(off) = spill {
                frame_store(ctx, t, off);
            }
        }
        IrInst::StoreIdx { w, src, base, index } => {
            let rb = read_val(ctx, fx, base, s0, s2);
            let ri = read_val(ctx, fx, index, s1, s2);
            let shift = w.bytes().trailing_zeros() as i64;
            if ctx.isa == Isa::Arm {
                let idx_reg = if shift > 0 {
                    ctx.alu_ri(AluOp::Sll, s1, ri, shift);
                    s1
                } else {
                    ri
                };
                let rs = read_val(ctx, fx, src, s2, s2);
                ctx.inst(AsmInst::StoreRR { w: *w, rs, base: rb, index: idx_reg });
            } else {
                if shift > 0 {
                    ctx.alu_ri(AluOp::Sll, s1, ri, shift);
                } else {
                    ctx.mov(s1, ri);
                }
                ctx.alu_rr(AluOp::Add, s1, s1, rb, s2);
                let rs = read_val(ctx, fx, src, s2, s0);
                ctx.inst(AsmInst::Store { w: *w, rs, base: s1, offset: 0 });
            }
        }
        IrInst::AddrOf { dst, global } => {
            let (t, spill) = write_target(fx, *dst, s0);
            ctx.items.push(Item::AddrOf { rd: t, global: *global });
            if let Some(off) = spill {
                frame_store(ctx, t, off);
            }
        }
        IrInst::Br { cond, a, b, target } => {
            let ra = read_val(ctx, fx, a, s0, s2);
            let rb = read_val(ctx, fx, b, s1, s2);
            ctx.items.push(Item::Br {
                cond: *cond,
                rn: ra,
                rm: rb,
                target: fx.label_keys[*target as usize],
            });
        }
        IrInst::Jump { target } => {
            ctx.items.push(Item::Jmp { target: fx.label_keys[*target as usize] });
        }
        IrInst::Bind { label } => {
            ctx.items.push(Item::Label(fx.label_keys[*label as usize]));
        }
        IrInst::Call { func, args, dst } => {
            for (i, arg) in args.iter().enumerate() {
                let r = read_val(ctx, fx, arg, s0, s1);
                frame_store_at(ctx, r, 8 * i as i64);
            }
            debug_assert!(8 * args.len() as i64 <= fx.out_area);
            ctx.items.push(Item::CallF { func: *func });
            if let Some(d) = dst {
                match fx.homes[*d as usize] {
                    Home::Phys(p) => ctx.mov(p, spec.ret_val),
                    Home::Slot(sl) => frame_store(ctx, spec.ret_val, fx.slot_off(sl)),
                }
            }
        }
        IrInst::Ret { val } => {
            if let Some(v) = val {
                let r = read_val(ctx, fx, v, s0, s1);
                ctx.mov(spec.ret_val, r);
            }
            ctx.items.push(Item::Jmp { target: fx.epilogue });
        }
        IrInst::Halt => ctx.inst(AsmInst::Halt),
        IrInst::Checkpoint => ctx.inst(AsmInst::Checkpoint),
        IrInst::SwitchCpu => ctx.inst(AsmInst::SwitchCpu),
        IrInst::Nop => ctx.inst(AsmInst::Nop),
    }
    Ok(())
}

/// Store to the outgoing-argument area (offsets always small).
fn frame_store_at(ctx: &mut ModCtx, reg: u8, off: i64) {
    frame_store(ctx, reg, off);
}

/// Invert a condition (exposed for the assembler's branch relaxation).
pub fn invert_cond(c: Cond) -> Cond {
    invert(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::FuncBuilder;

    fn tiny_module() -> Module {
        let mut m = Module::new();
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let x = b.li(5);
        let y = b.bin(AluOp::Mul, x, 3);
        b.out_byte(y);
        b.halt();
        m.define(f, b.build());
        m
    }

    #[test]
    fn lowers_for_all_isas() {
        let m = tiny_module();
        for isa in Isa::ALL {
            let l = lower(&m, isa).unwrap();
            assert!(l.items.len() > 5, "{isa}: too few items");
            assert!(l.items.iter().any(|i| matches!(i, Item::Inst(AsmInst::Halt))));
        }
    }

    #[test]
    fn x86_emits_more_moves_riscv_more_insts_than_arm() {
        // Structural sanity of the per-ISA differences: x86 uses MovRR for
        // the two-operand constraint; RISC-V materialises the console
        // address with lui+addi.
        let m = tiny_module();
        let rv = lower(&m, Isa::RiscV).unwrap();
        assert!(rv.items.iter().any(|i| matches!(i, Item::Inst(AsmInst::Lui { .. }))));
        let arm = lower(&m, Isa::Arm).unwrap();
        assert!(arm.items.iter().any(|i| matches!(i, Item::Inst(AsmInst::MovZ { .. }))));
    }

    #[test]
    fn spills_when_register_pressure_high() {
        let mut m = Module::new();
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        // 40 simultaneously-used values exceed every ISA's allocatable set.
        let vals: Vec<_> = (0..40).map(|i| b.li(i)).collect();
        let mut acc = b.li(0);
        for v in vals {
            acc = b.bin(AluOp::Add, acc, v);
        }
        b.out_byte(acc);
        b.halt();
        m.define(f, b.build());
        for isa in Isa::ALL {
            let l = lower(&m, isa).unwrap();
            let stores =
                l.items.iter().filter(|i| matches!(i, Item::Inst(AsmInst::Store { .. }))).count();
            assert!(stores > 3, "{isa}: expected spill stores, got {stores}");
        }
    }

    #[test]
    fn arm_const_materialization_covers_full_i64_range() {
        // Regression: negatives below -2^48 (top halfword not all-ones)
        // were materialised with a hardwired 0xFFFF top chunk.
        let cases: [i64; 14] = [
            0,
            1,
            -1,
            -5,
            256,
            -256,
            -4096,
            0x9C9C_9C9C_9C9C_9C9Cu64 as i64,
            0x8000_0000_0000_0000u64 as i64,
            i64::MIN + 1,
            i64::MAX,
            -0x0001_0000_0000_0000,
            0x7FFF_FFFF_FFFF_0000,
            0xFFFF_0000_0000_0001u64 as i64,
        ];
        for v in cases {
            let mut ctx =
                ModCtx { isa: Isa::Arm, spec: Isa::Arm.reg_spec(), items: Vec::new(), next_label: 0 };
            ctx.emit_const(1, v, 2);
            assert!(ctx.items.len() <= 4, "{v:#x}: movz/movk chain too long");
            let mut r: u64 = 0xDEAD_BEEF_DEAD_BEEF; // poison: movz must come first
            for it in &ctx.items {
                match it {
                    Item::Inst(AsmInst::MovZ { imm16, hw, .. }) => {
                        r = (*imm16 as u64) << (16 * *hw as u32);
                    }
                    Item::Inst(AsmInst::MovK { imm16, hw, .. }) => {
                        let sh = 16 * *hw as u32;
                        r = (r & !(0xFFFFu64 << sh)) | ((*imm16 as u64) << sh);
                    }
                    other => panic!("unexpected lowering item {other:?}"),
                }
            }
            assert_eq!(r, v as u64, "materialising {v:#x}");
        }
    }

    #[test]
    fn invert_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(invert(invert(c)), c);
        }
    }
}
