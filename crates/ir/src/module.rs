//! Module and function builders: the "source language" API workloads use.

use crate::inst::{FuncId, GlobalId, IrInst, Label, VReg, Value};
use crate::memmap::CONSOLE_ADDR;
use marvel_isa::{AluOp, Cond, MemWidth};

/// A data object placed in the binary's data section.
#[derive(Debug, Clone)]
pub struct Global {
    pub name: String,
    pub bytes: Vec<u8>,
    /// Alignment in bytes (power of two).
    pub align: usize,
}

/// A function: a linear instruction list with embedded label bindings.
#[derive(Debug, Clone)]
pub struct Function {
    pub name: String,
    /// Number of declared parameters; parameters occupy vregs `0..n_params`.
    pub n_params: u32,
    pub insts: Vec<IrInst>,
    pub n_vregs: u32,
    pub n_labels: u32,
}

/// A whole program: functions (index 0 need not be the entry; the entry is
/// the function named `main`) plus global data.
#[derive(Debug, Clone, Default)]
pub struct Module {
    pub funcs: Vec<Function>,
    pub globals: Vec<Global>,
}

impl Module {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a function and obtain its id before building its body (so
    /// mutually recursive calls can be expressed). The body is attached
    /// later by [`Module::define`].
    pub fn declare(&mut self, name: &str, n_params: u32) -> FuncId {
        self.funcs.push(Function {
            name: name.to_string(),
            n_params,
            insts: Vec::new(),
            n_vregs: n_params,
            n_labels: 0,
        });
        self.funcs.len() - 1
    }

    /// Attach a built body to a declared function.
    ///
    /// # Panics
    /// Panics if the function already has a body.
    pub fn define(&mut self, id: FuncId, body: FuncBody) {
        let f = &mut self.funcs[id];
        assert!(f.insts.is_empty(), "function {} already defined", f.name);
        assert_eq!(f.n_params, body.n_params, "parameter count mismatch for {}", f.name);
        f.insts = body.insts;
        f.n_vregs = body.n_vregs;
        f.n_labels = body.n_labels;
    }

    /// Add a global data object; returns its id.
    pub fn global(&mut self, name: &str, bytes: Vec<u8>, align: usize) -> GlobalId {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.globals.push(Global { name: name.to_string(), bytes, align });
        self.globals.len() - 1
    }

    /// Add a zero-initialised global of `len` bytes.
    pub fn global_zeroed(&mut self, name: &str, len: usize, align: usize) -> GlobalId {
        self.global(name, vec![0u8; len], align)
    }

    /// Add a global holding little-endian `u64` words.
    pub fn global_u64(&mut self, name: &str, words: &[u64]) -> GlobalId {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.global(name, bytes, 8)
    }

    /// Add a global holding little-endian `u32` words.
    pub fn global_u32(&mut self, name: &str, words: &[u32]) -> GlobalId {
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.global(name, bytes, 8)
    }

    /// Find a function id by name.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.funcs.iter().position(|f| f.name == name)
    }

    /// The entry function (`main`).
    ///
    /// # Panics
    /// Panics if no `main` exists.
    pub fn main_id(&self) -> FuncId {
        self.func_id("main").expect("module has no `main`")
    }

    /// Structural validation: every label bound exactly once, every branch
    /// target bound, every used function has a body, parameter counts match.
    pub fn validate(&self) -> Result<(), String> {
        for f in &self.funcs {
            if f.insts.is_empty() {
                return Err(format!("function {} has no body", f.name));
            }
            let mut bound = vec![0u32; f.n_labels as usize];
            for i in &f.insts {
                if let IrInst::Bind { label } = i {
                    bound[*label as usize] += 1;
                }
            }
            for i in &f.insts {
                match i {
                    IrInst::Br { target, .. } | IrInst::Jump { target }
                        if bound.get(*target as usize) != Some(&1) =>
                    {
                        return Err(format!(
                            "function {}: label {} bound {} times",
                            f.name,
                            target,
                            bound.get(*target as usize).copied().unwrap_or(0)
                        ));
                    }
                    IrInst::Call { func, args, .. } => {
                        let callee = self
                            .funcs
                            .get(*func)
                            .ok_or_else(|| format!("function {}: call to unknown id {func}", f.name))?;
                        if callee.n_params as usize != args.len() {
                            return Err(format!(
                                "function {}: call to {} with {} args (expects {})",
                                f.name,
                                callee.name,
                                args.len(),
                                callee.n_params
                            ));
                        }
                    }
                    _ => {}
                }
            }
            match f.insts.last() {
                Some(IrInst::Ret { .. }) | Some(IrInst::Halt) | Some(IrInst::Jump { .. }) => {}
                _ => {
                    return Err(format!("function {} does not end in ret/halt/jump", f.name));
                }
            }
        }
        Ok(())
    }
}

/// The body produced by a [`FuncBuilder`].
#[derive(Debug, Clone)]
pub struct FuncBody {
    n_params: u32,
    insts: Vec<IrInst>,
    n_vregs: u32,
    n_labels: u32,
}

/// Builder for one function body.
///
/// ```
/// use marvel_ir::{Module, FuncBuilder};
/// use marvel_isa::{AluOp, Cond, MemWidth};
///
/// let mut m = Module::new();
/// let main = m.declare("main", 0);
/// let mut b = FuncBuilder::new(0);
/// let i = b.li(0);
/// let top = b.new_label();
/// b.bind(top);
/// let i2 = b.bin(AluOp::Add, i, 1);
/// b.assign(i, i2);
/// b.br(Cond::Lt, i, 10, top);
/// b.out_byte(i);
/// b.halt();
/// m.define(main, b.build());
/// assert!(m.validate().is_ok());
/// ```
#[derive(Debug)]
pub struct FuncBuilder {
    n_params: u32,
    insts: Vec<IrInst>,
    next_vreg: u32,
    next_label: u32,
}

impl FuncBuilder {
    /// Create a builder; parameters occupy vregs `0..n_params`.
    pub fn new(n_params: u32) -> Self {
        FuncBuilder { n_params, insts: Vec::new(), next_vreg: n_params, next_label: 0 }
    }

    /// The vreg holding parameter `i`.
    pub fn param(&self, i: u32) -> VReg {
        assert!(i < self.n_params, "parameter index out of range");
        i
    }

    /// Allocate a fresh virtual register.
    pub fn vreg(&mut self) -> VReg {
        let r = self.next_vreg;
        self.next_vreg += 1;
        r
    }

    /// Allocate a label (bind it later with [`FuncBuilder::bind`]).
    pub fn new_label(&mut self) -> Label {
        let l = self.next_label;
        self.next_label += 1;
        l
    }

    pub fn bind(&mut self, l: Label) {
        self.insts.push(IrInst::Bind { label: l });
    }

    /// `dst = a <op> b` into a fresh vreg.
    pub fn bin(&mut self, op: AluOp, a: impl Into<Value>, b: impl Into<Value>) -> VReg {
        let dst = self.vreg();
        self.insts.push(IrInst::Bin { op, dst, a: a.into(), b: b.into() });
        dst
    }

    /// `dst = a <op> b` into an existing vreg.
    pub fn bin_into(&mut self, dst: VReg, op: AluOp, a: impl Into<Value>, b: impl Into<Value>) {
        self.insts.push(IrInst::Bin { op, dst, a: a.into(), b: b.into() });
    }

    /// Copy `src` into `dst` (`dst = src + 0`).
    pub fn assign(&mut self, dst: VReg, src: impl Into<Value>) {
        self.insts.push(IrInst::Bin { op: AluOp::Add, dst, a: src.into(), b: Value::Imm(0) });
    }

    /// Materialise a constant into a fresh vreg.
    pub fn li(&mut self, v: i64) -> VReg {
        let dst = self.vreg();
        self.insts.push(IrInst::Bin { op: AluOp::Add, dst, a: Value::Imm(v), b: Value::Imm(0) });
        dst
    }

    pub fn load(&mut self, w: MemWidth, signed: bool, base: impl Into<Value>, offset: i64) -> VReg {
        let dst = self.vreg();
        self.insts.push(IrInst::Load { w, signed, dst, base: base.into(), offset });
        dst
    }

    pub fn store(&mut self, w: MemWidth, src: impl Into<Value>, base: impl Into<Value>, offset: i64) {
        self.insts.push(IrInst::Store { w, src: src.into(), base: base.into(), offset });
    }

    /// `mem[base + index*w.bytes()]` load (element-indexed).
    pub fn load_idx(
        &mut self,
        w: MemWidth,
        signed: bool,
        base: impl Into<Value>,
        index: impl Into<Value>,
    ) -> VReg {
        let dst = self.vreg();
        self.insts.push(IrInst::LoadIdx { w, signed, dst, base: base.into(), index: index.into() });
        dst
    }

    /// `mem[base + index*w.bytes()] = src` (element-indexed).
    pub fn store_idx(
        &mut self,
        w: MemWidth,
        src: impl Into<Value>,
        base: impl Into<Value>,
        index: impl Into<Value>,
    ) {
        self.insts.push(IrInst::StoreIdx { w, src: src.into(), base: base.into(), index: index.into() });
    }

    /// `dst = &global`.
    pub fn addr_of(&mut self, g: GlobalId) -> VReg {
        let dst = self.vreg();
        self.insts.push(IrInst::AddrOf { dst, global: g });
        dst
    }

    pub fn br(&mut self, cond: Cond, a: impl Into<Value>, b: impl Into<Value>, target: Label) {
        self.insts.push(IrInst::Br { cond, a: a.into(), b: b.into(), target });
    }

    pub fn jump(&mut self, target: Label) {
        self.insts.push(IrInst::Jump { target });
    }

    /// Call returning a value.
    pub fn call(&mut self, func: FuncId, args: &[Value]) -> VReg {
        let dst = self.vreg();
        self.insts.push(IrInst::Call { func, args: args.to_vec(), dst: Some(dst) });
        dst
    }

    /// Call ignoring any return value.
    pub fn call_void(&mut self, func: FuncId, args: &[Value]) {
        self.insts.push(IrInst::Call { func, args: args.to_vec(), dst: None });
    }

    pub fn ret(&mut self, val: Option<Value>) {
        self.insts.push(IrInst::Ret { val });
    }

    /// Emit the low byte of `v` to the console device (the program-output
    /// stream compared for SDC detection).
    pub fn out_byte(&mut self, v: impl Into<Value>) {
        self.insts.push(IrInst::Store {
            w: MemWidth::B,
            src: v.into(),
            base: Value::Imm(CONSOLE_ADDR as i64),
            offset: 0,
        });
    }

    pub fn halt(&mut self) {
        self.insts.push(IrInst::Halt);
    }

    pub fn checkpoint(&mut self) {
        self.insts.push(IrInst::Checkpoint);
    }

    pub fn switch_cpu(&mut self) {
        self.insts.push(IrInst::SwitchCpu);
    }

    pub fn nop(&mut self) {
        self.insts.push(IrInst::Nop);
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Finish the body.
    pub fn build(self) -> FuncBody {
        FuncBody {
            n_params: self.n_params,
            insts: self.insts,
            n_vregs: self.next_vreg,
            n_labels: self.next_label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_validate_simple() {
        let mut m = Module::new();
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let x = b.li(1);
        b.out_byte(x);
        b.halt();
        m.define(f, b.build());
        assert!(m.validate().is_ok());
    }

    #[test]
    fn validate_rejects_unbound_label() {
        let mut m = Module::new();
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let l = b.new_label();
        b.jump(l); // never bound
        m.define(f, b.build());
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let mut m = Module::new();
        let callee = m.declare("f", 2);
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(2);
        b.ret(Some(Value::Imm(0)));
        m.define(callee, b.build());
        let mut b = FuncBuilder::new(0);
        b.call_void(callee, &[Value::Imm(1)]); // wrong arity
        b.halt();
        m.define(f, b.build());
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_requires_terminator() {
        let mut m = Module::new();
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        b.li(1);
        m.define(f, b.build());
        assert!(m.validate().is_err());
    }

    #[test]
    fn params_are_low_vregs() {
        let b = FuncBuilder::new(3);
        assert_eq!(b.param(0), 0);
        assert_eq!(b.param(2), 2);
    }

    #[test]
    fn global_helpers() {
        let mut m = Module::new();
        let g = m.global_u64("tbl", &[1, 2, 3]);
        assert_eq!(m.globals[g].bytes.len(), 24);
        let g2 = m.global_zeroed("buf", 100, 8);
        assert_eq!(m.globals[g2].bytes, vec![0u8; 100]);
    }
}
