//! Physical memory map shared by the compiler, the SoC and the loader.
//!
//! The map is bare-metal "full-system-ish": programs, data and stack live
//! in one RAM range; devices are memory-mapped below it. All mapped ranges
//! sit under 2^31 so absolute addresses are materialisable with 32-bit
//! immediate sequences on every ISA flavour; accesses outside the mapped
//! ranges fault, which is how wild pointers produced by bit flips turn into
//! Crashes.

/// Console device: stores to this address append the low byte of the data
/// to the captured program output (the SDC comparison stream).
pub const CONSOLE_ADDR: u64 = 0x1000_0000;

/// Interrupt controller (GIC/PLIC flavour) register block base.
pub const IRQ_CTRL_BASE: u64 = 0x1100_0000;
/// Interrupt controller register block size in bytes.
pub const IRQ_CTRL_SIZE: u64 = 0x1000;

/// Accelerator cluster MMR space base (each accelerator gets a 4 KiB page).
pub const ACCEL_MMR_BASE: u64 = 0x2000_0000;
/// MMR page size per accelerator.
pub const ACCEL_MMR_STRIDE: u64 = 0x1000;

/// RAM base: code is loaded here, data follows, the stack grows down from
/// the top.
pub const RAM_BASE: u64 = 0x4000_0000;
/// Default RAM size (4 MiB).
pub const RAM_SIZE: u64 = 4 * 1024 * 1024;

/// Initial stack pointer (16-byte aligned, small red zone below the top).
pub const STACK_TOP: u64 = RAM_BASE + RAM_SIZE - 256;

/// Interrupt vector: the address the core jumps to when accepting an
/// external interrupt. The SoC installs a hand-written handler stub here.
pub const IRQ_VECTOR: u64 = RAM_BASE + RAM_SIZE - 0x1000;

/// The default ISR writes `claimed source + 1` here; programs poll this
/// word to synchronise with accelerator completion interrupts.
pub const IRQ_FLAG_ADDR: u64 = IRQ_VECTOR - 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the point is to check the constant layout
    fn ranges_are_disjoint_and_below_2g() {
        assert!(CONSOLE_ADDR < IRQ_CTRL_BASE);
        assert!(IRQ_CTRL_BASE + IRQ_CTRL_SIZE <= ACCEL_MMR_BASE);
        assert!(ACCEL_MMR_BASE < RAM_BASE);
        assert!(RAM_BASE + RAM_SIZE <= 1 << 31);
        assert!(STACK_TOP.is_multiple_of(16));
        assert!(IRQ_VECTOR > RAM_BASE && IRQ_VECTOR < STACK_TOP);
    }
}
