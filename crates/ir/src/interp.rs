//! Reference interpreter for the portable IR.
//!
//! This is the *golden semantic model*: the cycle-level CPU running any ISA
//! flavour must produce exactly the console output this interpreter
//! produces for the same module. The fault-injection test-suite uses it for
//! differential testing, and the workload crate uses it to pin expected
//! outputs.
//!
//! To guarantee ISA-portability of workloads, the interpreter is stricter
//! than any flavour: division by zero and misaligned accesses are errors.

use crate::inst::{IrInst, Label, Value};
use crate::memmap::{CONSOLE_ADDR, RAM_BASE, RAM_SIZE};
use crate::module::Module;
use marvel_isa::{AluOp, Isa, MemWidth};
use std::collections::HashMap;

/// Where the interpreter places globals (an arbitrary but fixed spot inside
/// RAM; workload behaviour must not depend on absolute addresses).
const GLOBAL_BASE: u64 = RAM_BASE + 1024 * 1024;

/// Execution statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterpStats {
    pub insts: u64,
    pub loads: u64,
    pub stores: u64,
    pub calls: u64,
    pub branches: u64,
}

/// Interpreter errors (all indicate a workload bug, not a simulated fault).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    OutOfRange { addr: u64 },
    Misaligned { addr: u64, width: u64 },
    DivideByZero,
    StepLimit,
    MissingReturnValue { func: String },
    NoHalt,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::OutOfRange { addr } => write!(f, "access out of range: {addr:#x}"),
            InterpError::Misaligned { addr, width } => {
                write!(f, "misaligned {width}-byte access at {addr:#x}")
            }
            InterpError::DivideByZero => f.write_str("division by zero (non-portable)"),
            InterpError::StepLimit => f.write_str("step limit exceeded"),
            InterpError::MissingReturnValue { func } => {
                write!(f, "call expected a return value but {func} returned none")
            }
            InterpError::NoHalt => f.write_str("main returned without halt"),
        }
    }
}

impl std::error::Error for InterpError {}

/// The result of a completed interpretation.
#[derive(Debug, Clone)]
pub struct InterpResult {
    /// Bytes written to the console device — the program "output".
    pub output: Vec<u8>,
    pub stats: InterpStats,
}

/// Run a module's `main` to the `Halt` instruction.
///
/// # Errors
///
/// Returns [`InterpError`] on any non-portable behaviour or if `step_limit`
/// IR instructions execute without reaching `Halt`.
pub fn run(module: &Module, step_limit: u64) -> Result<InterpResult, InterpError> {
    Interp::new(module, step_limit).run()
}

struct Interp<'m> {
    module: &'m Module,
    mem: Vec<u8>,
    global_addrs: Vec<u64>,
    output: Vec<u8>,
    stats: InterpStats,
    steps_left: u64,
    /// Per-function label index maps, computed lazily.
    label_maps: Vec<Option<HashMap<Label, usize>>>,
}

enum FlowResult {
    Returned(Option<u64>),
    Halted,
}

impl<'m> Interp<'m> {
    fn new(module: &'m Module, step_limit: u64) -> Self {
        let mut mem = vec![0u8; RAM_SIZE as usize];
        let mut global_addrs = Vec::with_capacity(module.globals.len());
        let mut cursor = GLOBAL_BASE;
        for g in &module.globals {
            let align = g.align.max(1) as u64;
            cursor = (cursor + align - 1) & !(align - 1);
            global_addrs.push(cursor);
            let off = (cursor - RAM_BASE) as usize;
            mem[off..off + g.bytes.len()].copy_from_slice(&g.bytes);
            cursor += g.bytes.len() as u64;
        }
        assert!(cursor < RAM_BASE + RAM_SIZE, "globals exceed RAM");
        Interp {
            module,
            mem,
            global_addrs,
            output: Vec::new(),
            stats: InterpStats::default(),
            steps_left: step_limit,
            label_maps: vec![None; module.funcs.len()],
        }
    }

    fn run(mut self) -> Result<InterpResult, InterpError> {
        let main = self.module.main_id();
        match self.call(main, &[])? {
            FlowResult::Halted => Ok(InterpResult { output: self.output, stats: self.stats }),
            FlowResult::Returned(_) => Err(InterpError::NoHalt),
        }
    }

    fn label_map(&mut self, func: usize) -> &HashMap<Label, usize> {
        if self.label_maps[func].is_none() {
            let mut map = HashMap::new();
            for (i, inst) in self.module.funcs[func].insts.iter().enumerate() {
                if let IrInst::Bind { label } = inst {
                    map.insert(*label, i);
                }
            }
            self.label_maps[func] = Some(map);
        }
        self.label_maps[func].as_ref().unwrap()
    }

    fn call(&mut self, func: usize, args: &[u64]) -> Result<FlowResult, InterpError> {
        let module = self.module;
        let f = &module.funcs[func];
        let mut regs = vec![0u64; f.n_vregs.max(1) as usize];
        regs[..args.len()].copy_from_slice(args);
        let insts = &f.insts;
        let mut ip = 0usize;
        self.stats.calls += 1;

        while ip < insts.len() {
            if self.steps_left == 0 {
                return Err(InterpError::StepLimit);
            }
            self.steps_left -= 1;
            self.stats.insts += 1;

            // Clone is avoided: we match on a reference and only recurse for
            // calls, which copies out the needed fields first.
            match &insts[ip] {
                IrInst::Bin { op, dst, a, b } => {
                    let av = self.val(&regs, a);
                    let bv = self.val(&regs, b);
                    if matches!(op, AluOp::Div | AluOp::Rem) && bv == 0 {
                        return Err(InterpError::DivideByZero);
                    }
                    let r = op.eval(av, bv, Isa::RiscV).expect("riscv alu never traps");
                    regs[*dst as usize] = r;
                }
                IrInst::Load { w, signed, dst, base, offset } => {
                    let addr = self.val(&regs, base).wrapping_add(*offset as u64);
                    regs[*dst as usize] = self.read(addr, *w, *signed)?;
                }
                IrInst::Store { w, src, base, offset } => {
                    let addr = self.val(&regs, base).wrapping_add(*offset as u64);
                    let v = self.val(&regs, src);
                    self.write(addr, *w, v)?;
                }
                IrInst::LoadIdx { w, signed, dst, base, index } => {
                    let addr = self
                        .val(&regs, base)
                        .wrapping_add(self.val(&regs, index).wrapping_mul(w.bytes()));
                    regs[*dst as usize] = self.read(addr, *w, *signed)?;
                }
                IrInst::StoreIdx { w, src, base, index } => {
                    let addr = self
                        .val(&regs, base)
                        .wrapping_add(self.val(&regs, index).wrapping_mul(w.bytes()));
                    let v = self.val(&regs, src);
                    self.write(addr, *w, v)?;
                }
                IrInst::AddrOf { dst, global } => {
                    regs[*dst as usize] = self.global_addrs[*global];
                }
                IrInst::Br { cond, a, b, target } => {
                    self.stats.branches += 1;
                    let av = self.val(&regs, a);
                    let bv = self.val(&regs, b);
                    if cond.eval(av, bv) {
                        let t = *target;
                        ip = self.label_map(func)[&t];
                    }
                }
                IrInst::Jump { target } => {
                    self.stats.branches += 1;
                    let t = *target;
                    ip = self.label_map(func)[&t];
                }
                IrInst::Bind { .. } | IrInst::Nop | IrInst::Checkpoint | IrInst::SwitchCpu => {}
                IrInst::Call { func: callee, args, dst } => {
                    let argv: Vec<u64> = args.iter().map(|a| self.val(&regs, a)).collect();
                    let callee = *callee;
                    let dst = *dst;
                    match self.call(callee, &argv)? {
                        FlowResult::Halted => return Ok(FlowResult::Halted),
                        FlowResult::Returned(v) => {
                            if let Some(d) = dst {
                                let v = v.ok_or_else(|| InterpError::MissingReturnValue {
                                    func: self.module.funcs[callee].name.clone(),
                                })?;
                                regs[d as usize] = v;
                            }
                        }
                    }
                }
                IrInst::Ret { val } => {
                    let v = val.as_ref().map(|v| self.val(&regs, v));
                    return Ok(FlowResult::Returned(v));
                }
                IrInst::Halt => return Ok(FlowResult::Halted),
            }
            ip += 1;
        }
        Ok(FlowResult::Returned(None))
    }

    fn val(&self, regs: &[u64], v: &Value) -> u64 {
        match v {
            Value::Reg(r) => regs[*r as usize],
            Value::Imm(i) => *i as u64,
        }
    }

    fn read(&mut self, addr: u64, w: MemWidth, signed: bool) -> Result<u64, InterpError> {
        self.stats.loads += 1;
        let n = w.bytes();
        if !addr.is_multiple_of(n) {
            return Err(InterpError::Misaligned { addr, width: n });
        }
        if addr < RAM_BASE || addr + n > RAM_BASE + RAM_SIZE {
            return Err(InterpError::OutOfRange { addr });
        }
        let off = (addr - RAM_BASE) as usize;
        let mut raw = [0u8; 8];
        raw[..n as usize].copy_from_slice(&self.mem[off..off + n as usize]);
        Ok(w.extend(u64::from_le_bytes(raw), signed))
    }

    fn write(&mut self, addr: u64, w: MemWidth, v: u64) -> Result<(), InterpError> {
        self.stats.stores += 1;
        let n = w.bytes();
        if addr == CONSOLE_ADDR {
            self.output.push(v as u8);
            return Ok(());
        }
        if !addr.is_multiple_of(n) {
            return Err(InterpError::Misaligned { addr, width: n });
        }
        if addr < RAM_BASE || addr + n > RAM_BASE + RAM_SIZE {
            return Err(InterpError::OutOfRange { addr });
        }
        let off = (addr - RAM_BASE) as usize;
        self.mem[off..off + n as usize].copy_from_slice(&v.to_le_bytes()[..n as usize]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::FuncBuilder;
    use marvel_isa::Cond;

    #[test]
    fn loop_and_output() {
        let mut m = Module::new();
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let i = b.li(0);
        let top = b.new_label();
        b.bind(top);
        b.out_byte(i);
        let next = b.bin(AluOp::Add, i, 1);
        b.assign(i, next);
        b.br(Cond::Lt, i, 4, top);
        b.halt();
        m.define(f, b.build());
        let r = run(&m, 10_000).unwrap();
        assert_eq!(r.output, vec![0, 1, 2, 3]);
        assert!(r.stats.branches >= 4);
    }

    #[test]
    fn globals_and_memory() {
        let mut m = Module::new();
        let g = m.global_u64("t", &[10, 20, 30]);
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let base = b.addr_of(g);
        let x = b.load(MemWidth::D, false, base, 8);
        b.out_byte(x); // 20
        let i = b.li(2);
        let y = b.load_idx(MemWidth::D, false, base, i);
        b.out_byte(y); // 30
        b.store_idx(MemWidth::D, 99i64, base, i);
        let z = b.load(MemWidth::D, false, base, 16);
        b.out_byte(z); // 99
        b.halt();
        m.define(f, b.build());
        let r = run(&m, 10_000).unwrap();
        assert_eq!(r.output, vec![20, 30, 99]);
    }

    #[test]
    fn calls_and_returns() {
        let mut m = Module::new();
        let sq = m.declare("square", 1);
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(1);
        let p = b.param(0);
        let r = b.bin(AluOp::Mul, p, p);
        b.ret(Some(Value::Reg(r)));
        m.define(sq, b.build());

        let mut b = FuncBuilder::new(0);
        let v = b.call(sq, &[Value::Imm(7)]);
        b.out_byte(v);
        b.halt();
        m.define(f, b.build());
        let r = run(&m, 10_000).unwrap();
        assert_eq!(r.output, vec![49]);
    }

    #[test]
    fn recursion() {
        // fib(10) = 55
        let mut m = Module::new();
        let fib = m.declare("fib", 1);
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(1);
        let n = b.param(0);
        let l = b.new_label();
        b.br(Cond::Ge, n, 2, l);
        b.ret(Some(Value::Reg(n)));
        b.bind(l);
        let n1 = b.bin(AluOp::Sub, n, 1);
        let n2 = b.bin(AluOp::Sub, n, 2);
        let a = b.call(fib, &[Value::Reg(n1)]);
        let c = b.call(fib, &[Value::Reg(n2)]);
        let s = b.bin(AluOp::Add, a, c);
        b.ret(Some(Value::Reg(s)));
        m.define(fib, b.build());

        let mut b = FuncBuilder::new(0);
        let v = b.call(fib, &[Value::Imm(10)]);
        b.out_byte(v);
        b.halt();
        m.define(f, b.build());
        let r = run(&m, 1_000_000).unwrap();
        assert_eq!(r.output, vec![55]);
    }

    #[test]
    fn step_limit_enforced() {
        let mut m = Module::new();
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let top = b.new_label();
        b.bind(top);
        b.jump(top);
        m.define(f, b.build());
        assert_eq!(run(&m, 100).unwrap_err(), InterpError::StepLimit);
    }

    #[test]
    fn div_zero_is_error() {
        let mut m = Module::new();
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        b.bin(AluOp::Div, 1i64, 0i64);
        b.halt();
        m.define(f, b.build());
        assert_eq!(run(&m, 100).unwrap_err(), InterpError::DivideByZero);
    }

    #[test]
    fn misaligned_is_error() {
        let mut m = Module::new();
        let g = m.global_u64("t", &[0]);
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let base = b.addr_of(g);
        b.load(MemWidth::D, false, base, 3);
        b.halt();
        m.define(f, b.build());
        assert!(matches!(run(&m, 100).unwrap_err(), InterpError::Misaligned { .. }));
    }
}
