//! Optional IR optimisation passes: block-local constant folding, copy
//! propagation and strength reduction.
//!
//! The workload suite compiles unoptimised by default (the paper's
//! validation programs use `-O0`), but the passes are available for
//! studies of vulnerability across compiler optimisation levels — the
//! methodology of the authors' IISWC'21 follow-up — and are exercised by
//! differential tests (optimised and unoptimised modules must produce
//! identical interpreter output).

use crate::inst::{IrInst, VReg, Value};
use crate::module::Module;
use marvel_isa::AluOp;
use std::collections::HashMap;

/// Statistics from one [`optimize`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    pub folded: usize,
    pub propagated: usize,
    pub strength_reduced: usize,
}

/// Run all passes over every function. Returns per-pass counts.
pub fn optimize(m: &mut Module) -> OptStats {
    let mut stats = OptStats::default();
    for f in &mut m.funcs {
        stats = add(stats, fold_function(&mut f.insts));
    }
    stats
}

fn add(a: OptStats, b: OptStats) -> OptStats {
    OptStats {
        folded: a.folded + b.folded,
        propagated: a.propagated + b.propagated,
        strength_reduced: a.strength_reduced + b.strength_reduced,
    }
}

/// Evaluate a constant binary op with the portable (RISC-V) semantics the
/// interpreter uses. Division by zero is left for runtime.
fn eval_const(op: AluOp, a: i64, b: i64) -> Option<i64> {
    if matches!(op, AluOp::Div | AluOp::Rem) && b == 0 {
        return None;
    }
    Some(op.eval(a as u64, b as u64, marvel_isa::Isa::RiscV)? as i64)
}

fn fold_function(insts: &mut [IrInst]) -> OptStats {
    let mut stats = OptStats::default();
    // Known constants per vreg within the current basic block.
    let mut known: HashMap<VReg, i64> = HashMap::new();

    let subst = |v: &mut Value, known: &HashMap<VReg, i64>, stats: &mut OptStats| {
        if let Value::Reg(r) = v {
            if let Some(c) = known.get(r) {
                *v = Value::Imm(*c);
                stats.propagated += 1;
            }
        }
    };

    for inst in insts.iter_mut() {
        match inst {
            // Basic-block boundary: a label is a join point.
            IrInst::Bind { .. } => known.clear(),
            IrInst::Bin { op, dst, a, b } => {
                subst(a, &known, &mut stats);
                subst(b, &known, &mut stats);
                // Strength reduction: multiply by a power of two.
                if *op == AluOp::Mul {
                    if let Value::Imm(iv) = b {
                        if *iv > 0 && (*iv & (*iv - 1)) == 0 {
                            *op = AluOp::Sll;
                            *b = Value::Imm(iv.trailing_zeros() as i64);
                            stats.strength_reduced += 1;
                        }
                    }
                }
                if let (Value::Imm(av), Value::Imm(bv)) = (&a, &b) {
                    if let Some(c) = eval_const(*op, *av, *bv) {
                        known.insert(*dst, c);
                        *inst = IrInst::Bin {
                            op: AluOp::Add,
                            dst: *dst,
                            a: Value::Imm(c),
                            b: Value::Imm(0),
                        };
                        stats.folded += 1;
                        continue;
                    }
                }
                // Re-extract dst (inst may have been left intact).
                if let IrInst::Bin { dst, .. } = inst {
                    known.remove(dst);
                }
            }
            IrInst::Load { dst, base, .. } => {
                subst(base, &known, &mut stats);
                known.remove(dst);
            }
            IrInst::LoadIdx { dst, base, index, .. } => {
                subst(base, &known, &mut stats);
                subst(index, &known, &mut stats);
                known.remove(dst);
            }
            IrInst::Store { src, base, .. } => {
                subst(src, &known, &mut stats);
                subst(base, &known, &mut stats);
            }
            IrInst::StoreIdx { src, base, index, .. } => {
                subst(src, &known, &mut stats);
                subst(base, &known, &mut stats);
                subst(index, &known, &mut stats);
            }
            IrInst::AddrOf { dst, .. } => {
                known.remove(dst);
            }
            IrInst::Br { a, b, .. } => {
                subst(a, &known, &mut stats);
                subst(b, &known, &mut stats);
            }
            IrInst::Call { args, dst, .. } => {
                for arg in args.iter_mut() {
                    subst(arg, &known, &mut stats);
                }
                if let Some(d) = dst {
                    known.remove(d);
                }
            }
            IrInst::Ret { val: Some(v) } => subst(v, &known, &mut stats),
            _ => {}
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp;
    use crate::module::FuncBuilder;
    use marvel_isa::{Cond, MemWidth};

    fn workload() -> Module {
        let mut m = Module::new();
        let g = m.global_u64("t", &[3, 1, 4, 1, 5]);
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let base = b.addr_of(g);
        let four = b.li(4); // known constant
        let eight = b.bin(AluOp::Mul, four, 2); // foldable: 8
        let acc = b.li(0);
        let i = b.li(0);
        let top = b.new_label();
        b.bind(top);
        let scaled = b.bin(AluOp::Mul, i, 8); // strength-reducible
        let addr = b.bin(AluOp::Add, base, scaled);
        let v = b.load(MemWidth::D, false, addr, 0);
        let x = b.bin(AluOp::Add, acc, v);
        b.assign(acc, x);
        let i2 = b.bin(AluOp::Add, i, 1);
        b.assign(i, i2);
        b.br(Cond::Lt, i, 5, top);
        let fin = b.bin(AluOp::Xor, acc, eight);
        b.out_byte(fin);
        b.halt();
        m.define(f, b.build());
        m
    }

    #[test]
    fn passes_fire() {
        let mut m = workload();
        let s = optimize(&mut m);
        assert!(s.folded >= 1, "{s:?}");
        assert!(s.strength_reduced >= 1, "{s:?}");
        assert!(m.validate().is_ok());
    }

    #[test]
    fn output_is_preserved() {
        let plain = workload();
        let mut opt = workload();
        optimize(&mut opt);
        let a = interp::run(&plain, 1_000_000).unwrap();
        let b = interp::run(&opt, 1_000_000).unwrap();
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn div_by_zero_not_folded() {
        let mut m = Module::new();
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let zero = b.li(0);
        b.bin(AluOp::Div, 10, zero);
        b.halt();
        m.define(f, b.build());
        optimize(&mut m);
        // The division must survive (runtime semantics are ISA-dependent).
        assert!(m.funcs[0].insts.iter().any(|i| matches!(i, IrInst::Bin { op: AluOp::Div, .. })));
    }

    #[test]
    fn labels_reset_knowledge() {
        // A constant defined before a loop label must not be propagated
        // into the loop if redefined inside it.
        let mut m = Module::new();
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let x = b.li(1);
        let top = b.new_label();
        b.bind(top);
        b.out_byte(x);
        let x2 = b.bin(AluOp::Add, x, 1);
        b.assign(x, x2);
        b.br(Cond::Lt, x, 4, top);
        b.halt();
        m.define(f, b.build());
        let plain_out = interp::run(&m, 10_000).unwrap().output;
        optimize(&mut m);
        assert_eq!(interp::run(&m, 10_000).unwrap().output, plain_out);
    }
}
