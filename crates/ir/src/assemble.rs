//! Two-pass assembly with branch relaxation: lowered items → loadable image.
//!
//! Layout iterates until no conditional branch overflows its ISA's
//! immediate range; overflowing branches are relaxed (monotonically) into
//! an inverted branch over an unconditional jump. Data follows code,
//! aligned; global addresses are resolved afterwards, which is sound
//! because every `AddrOf` materialisation has a fixed, value-independent
//! length.

use crate::lower::{invert_cond, lower, Item, LowerError, Lowered};
use crate::memmap::{RAM_BASE, RAM_SIZE};
use crate::module::Module;
use marvel_isa::{AluOp, AsmInst, Cond, Isa};

/// A fully assembled program image, loadable at [`RAM_BASE`].
#[derive(Debug, Clone)]
pub struct Binary {
    pub isa: Isa,
    /// Code followed by (aligned) data; load at `entry`.
    pub image: Vec<u8>,
    /// Entry point (== [`RAM_BASE`]; the synthesised `_start`).
    pub entry: u64,
    /// Length of the code portion of `image` in bytes.
    pub code_len: usize,
    /// Absolute address of each function (same indexing as the module).
    pub func_addrs: Vec<u64>,
    /// Absolute address of each global (same indexing as the module).
    pub global_addrs: Vec<u64>,
    /// Number of machine instructions emitted.
    pub inst_count: usize,
}

impl Binary {
    /// Static code footprint in bytes (the paper's L1I-residency driver).
    pub fn code_size(&self) -> usize {
        self.code_len
    }
}

/// Compile a module for an ISA: validate → lower → lay out → encode.
///
/// # Errors
/// Returns [`LowerError`] on validation/encoding failures or if the image
/// exceeds RAM.
pub fn assemble(module: &Module, isa: Isa) -> Result<Binary, LowerError> {
    let lowered = lower(module, isa)?;
    assemble_lowered(module, &lowered)
}

fn branch_len(isa: Isa, cond: Cond, rn: u8, rm: u8) -> usize {
    match isa {
        Isa::X86 => {
            // Jcc = [prefix] opcode modrm disp32.
            let pfx = usize::from(rn >= 8 || rm >= 8);
            let _ = cond;
            pfx + 1 + 1 + 4
        }
        _ => 4,
    }
}

fn jmp_len(isa: Isa) -> usize {
    match isa {
        Isa::X86 => 5,
        _ => 4,
    }
}

fn call_len(isa: Isa) -> usize {
    match isa {
        Isa::X86 => 5,
        _ => 4,
    }
}

fn br_fits(isa: Isa, off: i64) -> bool {
    match isa {
        Isa::X86 => true,
        Isa::RiscV => (-4096..4096).contains(&off),
        Isa::Arm => (-32768..32768).contains(&off),
    }
}

/// Fixed-length materialisation of a 32-bit absolute address.
fn addrof_insts(isa: Isa, rd: u8, addr: u64) -> Vec<AsmInst> {
    debug_assert!(addr < (1 << 31));
    match isa {
        Isa::RiscV => {
            let v = addr as i64;
            let hi = (v + 0x800) >> 12;
            let lo = v - (hi << 12);
            vec![
                AsmInst::Lui { rd, imm20: hi as i32 },
                AsmInst::AluRI { op: AluOp::Add, rd, rn: rd, imm: lo },
            ]
        }
        Isa::Arm => vec![
            AsmInst::MovZ { rd, imm16: addr as u16, hw: 0 },
            AsmInst::MovK { rd, imm16: (addr >> 16) as u16, hw: 1 },
        ],
        Isa::X86 => vec![AsmInst::MovImm64 { rd, imm: addr as i64 }],
    }
}

fn addrof_len(isa: Isa, rd: u8) -> usize {
    // Length is independent of the address value (all addresses < 2^31).
    addrof_insts(isa, rd, 0x4000_0000).iter().map(|i| isa.encoded_len(i).unwrap()).sum()
}

fn assemble_lowered(module: &Module, l: &Lowered) -> Result<Binary, LowerError> {
    let isa = l.isa;
    let n = l.items.len();
    let mut expanded = vec![false; n];

    // --- base sizes (expanded flag adds jmp_len) ---
    let mut base_size = vec![0usize; n];
    for (i, it) in l.items.iter().enumerate() {
        base_size[i] = match it {
            Item::Inst(inst) => isa.encoded_len(inst)?,
            Item::Label(_) => 0,
            Item::Br { cond, rn, rm, .. } => branch_len(isa, *cond, *rn, *rm),
            Item::Jmp { .. } => jmp_len(isa),
            Item::CallF { .. } => call_len(isa),
            Item::AddrOf { rd, .. } => addrof_len(isa, *rd),
        };
    }

    // --- iterative layout with monotone relaxation ---
    let mut addrs = vec![0u64; n + 1];
    let mut label_addr = vec![0u64; l.n_labels as usize];
    loop {
        let mut pc = RAM_BASE;
        for i in 0..n {
            addrs[i] = pc;
            let sz = base_size[i] + if expanded[i] { jmp_len(isa) } else { 0 };
            if let Item::Label(k) = &l.items[i] {
                label_addr[*k as usize] = pc;
            }
            pc += sz as u64;
        }
        addrs[n] = pc;

        let mut changed = false;
        for i in 0..n {
            if let Item::Br { target, .. } = &l.items[i] {
                if !expanded[i] {
                    let off = label_addr[*target as usize] as i64 - addrs[i] as i64;
                    if !br_fits(isa, off) {
                        expanded[i] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let code_len = (addrs[n] - RAM_BASE) as usize;

    // --- data layout ---
    let mut data_cursor = RAM_BASE + ((code_len as u64 + 63) & !63);
    let mut global_addrs = Vec::with_capacity(module.globals.len());
    for g in &module.globals {
        let a = g.align.max(1) as u64;
        data_cursor = (data_cursor + a - 1) & !(a - 1);
        global_addrs.push(data_cursor);
        data_cursor += g.bytes.len() as u64;
    }
    let image_len = (data_cursor - RAM_BASE) as usize;
    if image_len as u64 + 64 * 1024 > RAM_SIZE {
        return Err(LowerError::Validate(format!(
            "image ({image_len} bytes) leaves no room for the stack in RAM"
        )));
    }

    // --- function addresses ---
    let func_addrs: Vec<u64> = l.func_item_starts.iter().map(|&s| addrs[s]).collect();

    // --- encoding ---
    let mut image = vec![0u8; image_len];
    let mut inst_count = 0usize;
    let mut emit = |pc: &mut u64, inst: &AsmInst, image: &mut Vec<u8>| -> Result<(), LowerError> {
        let bytes = isa.encode(inst)?;
        let off = (*pc - RAM_BASE) as usize;
        image[off..off + bytes.len()].copy_from_slice(&bytes);
        *pc += bytes.len() as u64;
        inst_count += 1;
        Ok(())
    };

    for (i, it) in l.items.iter().enumerate() {
        let mut pc = addrs[i];
        match it {
            Item::Inst(inst) => emit(&mut pc, inst, &mut image)?,
            Item::Label(_) => {}
            Item::Br { cond, rn, rm, target } => {
                let taddr = label_addr[*target as usize] as i64;
                if expanded[i] {
                    let blen = branch_len(isa, *cond, *rn, *rm) as i64;
                    let jlen = jmp_len(isa) as i64;
                    let skip = (blen + jlen) as i32;
                    emit(
                        &mut pc,
                        &AsmInst::Branch { cond: invert_cond(*cond), rn: *rn, rm: *rm, offset: skip },
                        &mut image,
                    )?;
                    let joff = (taddr - pc as i64) as i32;
                    emit(&mut pc, &AsmInst::Jmp { offset: joff }, &mut image)?;
                } else {
                    let off = (taddr - pc as i64) as i32;
                    emit(
                        &mut pc,
                        &AsmInst::Branch { cond: *cond, rn: *rn, rm: *rm, offset: off },
                        &mut image,
                    )?;
                }
            }
            Item::Jmp { target } => {
                let off = (label_addr[*target as usize] as i64 - pc as i64) as i32;
                emit(&mut pc, &AsmInst::Jmp { offset: off }, &mut image)?;
            }
            Item::CallF { func } => {
                let off = (func_addrs[*func] as i64 - pc as i64) as i32;
                emit(&mut pc, &AsmInst::Call { offset: off }, &mut image)?;
            }
            Item::AddrOf { rd, global } => {
                for inst in addrof_insts(isa, *rd, global_addrs[*global]) {
                    emit(&mut pc, &inst, &mut image)?;
                }
            }
        }
        // Verify layout agreement.
        debug_assert_eq!(pc, addrs[i + 1], "layout mismatch at item {i}: {it:?}");
    }

    // --- data bytes ---
    for (g, &a) in module.globals.iter().zip(&global_addrs) {
        let off = (a - RAM_BASE) as usize;
        image[off..off + g.bytes.len()].copy_from_slice(&g.bytes);
    }

    Ok(Binary { isa, image, entry: RAM_BASE, code_len, func_addrs, global_addrs, inst_count })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::FuncBuilder;
    use marvel_isa::Cond;

    fn mk_loop_module(pad: usize) -> Module {
        // A backward branch over `pad` filler instructions, to force
        // relaxation on RISC-V when pad*4 > 4 KiB.
        let mut m = Module::new();
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let i = b.li(0);
        let top = b.new_label();
        b.bind(top);
        for _ in 0..pad {
            b.nop();
        }
        let nx = b.bin(AluOp::Add, i, 1);
        b.assign(i, nx);
        b.br(Cond::Lt, i, 2, top);
        b.out_byte(i);
        b.halt();
        m.define(f, b.build());
        m
    }

    #[test]
    fn assembles_for_all_isas() {
        let m = mk_loop_module(4);
        for isa in Isa::ALL {
            let b = assemble(&m, isa).unwrap();
            assert_eq!(b.entry, RAM_BASE);
            assert!(b.code_len > 0);
            assert!(b.inst_count > 10);
            assert_eq!(b.func_addrs.len(), 1);
        }
    }

    #[test]
    fn riscv_branch_relaxation_kicks_in() {
        let near = assemble(&mk_loop_module(4), Isa::RiscV).unwrap();
        let far = assemble(&mk_loop_module(1500), Isa::RiscV).unwrap();
        // 1500 nops * 4B = 6 KB > ±4 KiB: the backward branch must have
        // been relaxed, costing exactly one extra instruction on top of
        // the 1496 additional nops.
        assert_eq!(far.inst_count, near.inst_count + 1496 + 1);
        assert!(far.code_len > 6000);
    }

    #[test]
    fn code_is_decodable_from_entry() {
        // Walk the first instructions of the image: they must all decode.
        for isa in Isa::ALL {
            let b = assemble(&mk_loop_module(2), isa).unwrap();
            let mut pc = 0usize;
            let mut n = 0;
            while pc < b.code_len.min(200) {
                let d = isa
                    .decode(&b.image[pc..b.code_len.min(pc + 16)])
                    .unwrap_or_else(|e| panic!("{isa}: undecodable at {pc}: {e:?}"));
                pc += d.len as usize;
                n += 1;
            }
            assert!(n > 5);
        }
    }

    #[test]
    fn globals_are_placed_and_aligned() {
        let mut m = mk_loop_module(2);
        let g1 = m.global("a", vec![1, 2, 3], 1);
        let g2 = m.global_u64("b", &[0xDEAD_BEEF]);
        let b = assemble(&m, Isa::Arm).unwrap();
        assert!(b.global_addrs[g1] >= RAM_BASE + b.code_len as u64);
        assert_eq!(b.global_addrs[g2] % 8, 0);
        let off = (b.global_addrs[g2] - RAM_BASE) as usize;
        assert_eq!(&b.image[off..off + 8], &0xDEAD_BEEFu64.to_le_bytes());
    }

    #[test]
    fn image_too_big_rejected() {
        let mut m = mk_loop_module(2);
        m.global_zeroed("huge", RAM_SIZE as usize, 8);
        assert!(assemble(&m, Isa::RiscV).is_err());
    }
}
