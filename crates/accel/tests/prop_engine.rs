//! Property tests on the accelerator engine: schedule determinism,
//! FU-count result-invariance, and SRAM fault algebra.

use marvel_accel::air::{CdfgBuilder, MemRef};
use marvel_accel::{AccelState, Accelerator, FuConfig, Sram, SramKind};
use marvel_isa::AluOp;
use proptest::prelude::*;

/// acc = Σ (in[i] * k + c) over n elements, result in OUT[0].
fn mac_accel(fu: FuConfig, n: u64, k: u64, c: u64) -> Accelerator {
    let mut g = CdfgBuilder::new();
    let entry = g.block(0);
    let body = g.block(2);
    let done = g.block(1);
    g.select(entry);
    let z = g.konst(0);
    g.jump(body, &[z, z]);
    g.select(body);
    let i = g.arg(0);
    let acc = g.arg(1);
    let eight = g.konst(8);
    let off = g.alu(AluOp::Mul, i, eight);
    let v = g.load(MemRef::Spm(0), 8, off);
    let kk = g.konst(k);
    let prod = g.alu(AluOp::Mul, v, kk);
    let cc = g.konst(c);
    let term = g.alu(AluOp::Add, prod, cc);
    let acc2 = g.alu(AluOp::Add, acc, term);
    let one = g.konst(1);
    let i2 = g.alu(AluOp::Add, i, one);
    let nn = g.konst(n);
    let more = g.alu(AluOp::Sltu, i2, nn);
    g.branch(more, body, &[i2, acc2], done, &[acc2]);
    g.select(done);
    let acc = g.arg(0);
    let z = g.konst(0);
    g.store(MemRef::Spm(1), 8, z, acc);
    g.finish();
    Accelerator::new(
        "mac",
        g.build().unwrap(),
        fu,
        vec![Sram::new("IN", SramKind::Spm, 512, 2), Sram::new("OUT", SramKind::Spm, 8, 1)],
        vec![],
        0,
    )
}

fn run_to_done(a: &mut Accelerator) -> u64 {
    a.start(&[]);
    for _ in 0..2_000_000u64 {
        match a.tick() {
            AccelState::Done => return a.spms[1].read(0, 8).unwrap(),
            AccelState::Error(e) => panic!("accel error: {e}"),
            _ => {}
        }
    }
    panic!("accel did not finish");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn result_matches_host_and_is_fu_invariant(
        vals in prop::collection::vec(any::<u32>(), 1..32),
        k in 1u64..1000,
        c in 0u64..1000,
        fus in 1usize..8,
    ) {
        let n = vals.len() as u64;
        let expect: u64 = vals
            .iter()
            .fold(0u64, |acc, &v| acc.wrapping_add((v as u64).wrapping_mul(k).wrapping_add(c)));

        let mut small = mac_accel(FuConfig::uniform(fus), n, k, c);
        let mut big = mac_accel(FuConfig::uniform(16), n, k, c);
        for (i, &v) in vals.iter().enumerate() {
            small.spms[0].write(i as u64 * 8, 8, v as u64).unwrap();
            big.spms[0].write(i as u64 * 8, 8, v as u64).unwrap();
        }
        let r1 = run_to_done(&mut small);
        let r2 = run_to_done(&mut big);
        prop_assert_eq!(r1, expect);
        prop_assert_eq!(r2, expect);
    }

    #[test]
    fn cycle_counts_deterministic(seed in any::<u64>()) {
        let n = 8 + (seed % 16);
        let mut a = mac_accel(FuConfig::default(), n, 3, 1);
        let mut b = mac_accel(FuConfig::default(), n, 3, 1);
        for i in 0..n {
            a.spms[0].write(i * 8, 8, seed ^ i).unwrap();
            b.spms[0].write(i * 8, 8, seed ^ i).unwrap();
        }
        run_to_done(&mut a);
        run_to_done(&mut b);
        prop_assert_eq!(a.stats.compute_cycles, b.stats.compute_cycles);
        prop_assert_eq!(a.stats.nodes_executed, b.stats.nodes_executed);
    }

    #[test]
    fn double_flip_is_identity(bytes in 8u64..512, bit in 0u64..64) {
        let mut s = Sram::new("t", SramKind::Spm, 512, 2);
        s.write(0, 8, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        let snapshot: Vec<u8> = s.bytes().to_vec();
        let target = (bytes * 8 + bit) % s.bit_len();
        s.flip_bit(target);
        s.flip_bit(target);
        prop_assert_eq!(s.bytes(), &snapshot[..]);
    }
}
