//! The accelerator compute unit: CDFG execution with functional-unit
//! constraints and per-memory port limits — the gem5-SALAM dynamic
//! execution engine analogue.
//!
//! Two engines share one fire body ([`Accelerator::exec_node`]):
//!
//! - **Cycle** ([`Accelerator::tick`]): the original oracle — every cycle
//!   retires completions and scans all nodes for issue.
//! - **Event** ([`Accelerator::advance`]): follows a precomputed
//!   [`StaticSchedule`], jumping straight between fire/terminator cycles,
//!   and optionally replays a recorded [`GoldenTrace`], re-evaluating
//!   only nodes whose inputs are tainted.

use crate::air::{Cdfg, FuClass, MemRef, NodeOp, Terminator, NODE_NONE};
use crate::mmr::{Mmr, CTRL_START, MMR_CTRL, MMR_DATA0, MMR_STATUS, STATUS_DONE, STATUS_ERROR};
use crate::schedule::{build_schedule, GoldenTrace, MemTiming, StaticSchedule};
use crate::sram::Sram;
use marvel_isa::{AluOp, Isa};
use marvel_telemetry::{alu_taint, TaintAluKind, TaintTracer};
use std::sync::Arc;

/// Map an ALU op onto its taint-transfer class (mirrors the CPU core).
fn taint_kind(op: AluOp) -> TaintAluKind {
    match op {
        AluOp::And | AluOp::Or | AluOp::Xor => TaintAluKind::Bitwise,
        AluOp::Add | AluOp::Sub => TaintAluKind::Arith,
        AluOp::Sll => TaintAluKind::ShiftLeft,
        AluOp::Srl | AluOp::Sra => TaintAluKind::ShiftRight,
        AluOp::Mul | AluOp::Div | AluOp::Rem | AluOp::Slt | AluOp::Sltu => TaintAluKind::Wide,
    }
}

/// marvel-taint state of an accelerator: the propagation tracer plus a
/// sticky control-poison flag (set once a tainted value decides a branch,
/// after which every store is suspect).
#[derive(Debug, Clone)]
pub struct AccelTaint {
    pub tracer: TaintTracer,
    ctl: bool,
}

/// Functional-unit configuration — the Fig. 17 design-space axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    pub int_alu: usize,
    pub fp_add: usize,
    pub fp_mul: usize,
}

impl FuConfig {
    pub fn uniform(n: usize) -> Self {
        FuConfig { int_alu: n, fp_add: n, fp_mul: n }
    }

    /// Analytic area estimate in arbitrary units (functional units only;
    /// memories are added by [`Accelerator::area`]).
    pub fn fu_area(&self) -> f64 {
        self.int_alu as f64 * 1.0 + self.fp_add as f64 * 2.5 + self.fp_mul as f64 * 4.0
    }
}

impl Default for FuConfig {
    fn default() -> Self {
        FuConfig::uniform(4)
    }
}

/// Datapath error conditions (classified as Crash by the injector).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccelError {
    /// A load/store fell outside its SPM/RegBank.
    OutOfBounds { mem_is_spm: bool, mem_idx: usize, addr: u64 },
}

impl std::fmt::Display for AccelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccelError::OutOfBounds { mem_is_spm, mem_idx, addr } => write!(
                f,
                "out-of-bounds access to {} {} at local address {addr:#x}",
                if *mem_is_spm { "SPM" } else { "RegBank" },
                mem_idx
            ),
        }
    }
}

impl std::error::Error for AccelError {}

/// Externally visible execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccelState {
    Idle,
    Running,
    Done,
    Error(AccelError),
}

/// Per-run statistics.
#[derive(Debug, Clone, Default)]
pub struct AccelStats {
    pub compute_cycles: u64,
    pub nodes_executed: u64,
    pub mem_reads: u64,
    pub mem_writes: u64,
    pub blocks_executed: u64,
    /// Fires that went through full datapath evaluation (Const/Arg/Store
    /// excluded). Under golden replay this is taint-proportional, not
    /// O(nodes × cycles) — the perf guard pins that.
    pub node_evals: u64,
    /// Fires satisfied from the golden trace without re-evaluation.
    pub memo_hits: u64,
    /// Block instances collapsed whole by the warp fast path.
    pub warp_blocks: u64,
}

/// Which stepping strategy [`Accelerator::advance`] uses. The cycle
/// engine is the oracle; the event engine requires an installed
/// [`StaticSchedule`] and produces bit-identical results (the
/// differential tests pin this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccelEngine {
    #[default]
    Cycle,
    Event,
}

/// Golden-replay cursor state. `aligned` is sticky-false: once the run's
/// control path (block entries at exact cycles) diverges from the
/// recorded trace, every remaining node is fully evaluated.
#[derive(Debug, Clone)]
struct ReplayCtl {
    trace: Arc<GoldenTrace>,
    fire_pos: usize,
    block_pos: usize,
    /// Cursor into `trace.load_addrs`, advanced at every aligned load fire.
    load_pos: usize,
    /// Cursor into `trace.store_ops`, advanced at every aligned store fire.
    store_pos: usize,
    aligned: bool,
}

#[derive(Debug, Clone)]
struct BlockExec {
    block: usize,
    args: Vec<u64>,
    vals: Vec<u64>,
    done: Vec<bool>,
    started: Vec<bool>,
    /// (completion cycle, node index)
    pending: Vec<(u64, u32)>,
    remaining: usize,
    /// Absolute cycle this block was entered (schedule cycles are
    /// relative to it).
    entry_cycle: u64,
    /// Next index into the block's static fire list (event engine only;
    /// stays 0 under the cycle engine).
    sched_pos: u32,
    /// marvel-taint shadows of `args`/`vals` (empty when tracking is off).
    args_taint: Vec<u64>,
    vals_taint: Vec<u64>,
}

impl BlockExec {
    /// Functional equality: the taint shadows are excluded (a faulty run
    /// with taint enabled allocates them; the pristine snapshot does not),
    /// their effect is checked separately via taint quiescence. The
    /// event-engine cursor state (`entry_cycle`, `sched_pos`) is included:
    /// the convergence exit must never equate two executions that would
    /// fire or retire events differently from here on.
    fn func_eq(&self, other: &BlockExec) -> bool {
        self.block == other.block
            && self.args == other.args
            && self.vals == other.vals
            && self.done == other.done
            && self.started == other.started
            && self.pending == other.pending
            && self.remaining == other.remaining
            && self.entry_cycle == other.entry_cycle
            && self.sched_pos == other.sched_pos
    }

    fn taint_quiescent(&self) -> bool {
        self.args_taint.iter().all(|&t| t == 0) && self.vals_taint.iter().all(|&t| t == 0)
    }
}

/// A SALAM-style accelerator instance.
#[derive(Debug, Clone)]
pub struct Accelerator {
    pub name: String,
    pub cdfg: Cdfg,
    pub fu: FuConfig,
    pub spms: Vec<Sram>,
    pub regbanks: Vec<Sram>,
    pub mmr: Mmr,
    state: AccelState,
    exec: Option<BlockExec>,
    cycle: u64,
    /// Interrupt line (level); raised on completion, cleared by MMR access.
    pub irq: bool,
    pub stats: AccelStats,
    /// marvel-taint plane (`None` = off).
    taint: Option<Box<AccelTaint>>,
    /// Stepping strategy used by [`Accelerator::advance`].
    engine: AccelEngine,
    /// Static fire schedule, shared by all clones of one golden prep.
    schedule: Option<Arc<StaticSchedule>>,
    /// Golden-trace replay cursor (armed by the golden prep; cursors ride
    /// along `clone`/`reset_from` so ladder rungs resume mid-trace).
    replay: Option<ReplayCtl>,
    /// In-progress golden trace recording (golden prep only).
    recording: Option<Box<GoldenTrace>>,
}

impl Accelerator {
    pub fn new(
        name: &str,
        cdfg: Cdfg,
        fu: FuConfig,
        spms: Vec<Sram>,
        regbanks: Vec<Sram>,
        n_args: usize,
    ) -> Self {
        cdfg.validate().expect("invalid CDFG");
        assert_eq!(cdfg.blocks[0].n_args, n_args, "entry block arg count mismatch");
        Accelerator {
            name: name.to_string(),
            cdfg,
            fu,
            spms,
            regbanks,
            mmr: Mmr::new(n_args),
            state: AccelState::Idle,
            exec: None,
            cycle: 0,
            irq: false,
            stats: AccelStats::default(),
            taint: None,
            engine: AccelEngine::Cycle,
            schedule: None,
            replay: None,
            recording: None,
        }
    }

    // ---- event engine control ----

    /// Build and attach the static schedule for this design (idempotent).
    /// Returns whether the design is schedulable; callers stay on the
    /// cycle engine when it is not.
    pub fn prepare_event_engine(&mut self) -> bool {
        if self.schedule.is_some() {
            return true;
        }
        let t = |s: &Sram| MemTiming { ports: s.ports, read_latency: s.kind.read_latency() };
        let spms: Vec<MemTiming> = self.spms.iter().map(t).collect();
        let regbanks: Vec<MemTiming> = self.regbanks.iter().map(t).collect();
        match build_schedule(&self.cdfg, &self.fu, &spms, &regbanks) {
            Some(s) => {
                self.schedule = Some(Arc::new(s));
                true
            }
            None => false,
        }
    }

    /// Switch to the event engine. Returns `false` (and stays on the
    /// cycle engine) when no schedule is installed.
    pub fn set_engine_event(&mut self) -> bool {
        if self.schedule.is_some() {
            self.engine = AccelEngine::Event;
            true
        } else {
            false
        }
    }

    pub fn set_engine_cycle(&mut self) {
        self.engine = AccelEngine::Cycle;
    }

    pub fn event_engine(&self) -> bool {
        self.engine == AccelEngine::Event
    }

    /// Arm golden-trace replay from the beginning of a run.
    pub fn arm_replay(&mut self, trace: Arc<GoldenTrace>) {
        self.replay = Some(ReplayCtl {
            trace,
            fire_pos: 0,
            block_pos: 0,
            load_pos: 0,
            store_pos: 0,
            aligned: true,
        });
    }

    /// A replayable trace and schedule are both present.
    pub fn replay_armed(&self) -> bool {
        self.replay.is_some() && self.schedule.is_some()
    }

    /// The replay cursor still tracks the golden control path (`true`
    /// when replay is unarmed — there is nothing to diverge from).
    pub fn replay_aligned(&self) -> bool {
        self.replay.as_ref().is_none_or(|r| r.aligned)
    }

    /// Start recording a golden firing trace (golden prep only).
    pub fn begin_trace_recording(&mut self) {
        self.recording = Some(Box::default());
    }

    /// Finish recording and take the trace.
    pub fn take_trace(&mut self) -> Option<GoldenTrace> {
        self.recording.take().map(|b| *b)
    }

    // ---- marvel-taint control ----

    /// Enable taint tracking before fault arming: allocates the SRAM and
    /// MMR shadows plus the propagation tracer (`seed` labels the
    /// injection site).
    pub fn enable_taint(&mut self, seed: &str) {
        for s in self.spms.iter_mut().chain(self.regbanks.iter_mut()) {
            s.enable_taint();
        }
        self.mmr.enable_taint();
        // Enabling mid-run (a checkpoint-ladder rung restore) finds a block
        // already in flight whose shadows were never allocated: give it
        // zeroed planes — the fault-free prefix carries no taint.
        if let Some(ex) = self.exec.as_mut() {
            if ex.args_taint.len() < ex.args.len() {
                ex.args_taint = vec![0; ex.args.len()];
            }
            if ex.vals_taint.len() < ex.vals.len() {
                ex.vals_taint = vec![0; ex.vals.len()];
            }
        }
        self.taint = Some(Box::new(AccelTaint { tracer: TaintTracer::new(seed), ctl: false }));
    }

    pub fn taint_enabled(&self) -> bool {
        self.taint.is_some()
    }

    pub fn taint_tracer(&self) -> Option<&TaintTracer> {
        self.taint.as_deref().map(|t| &t.tracer)
    }

    /// Record a propagation hop on behalf of external movers (DMA).
    pub fn taint_hop(&mut self, from: &'static str, to: &'static str) {
        let cyc = self.cycle;
        if let Some(t) = self.taint.as_deref_mut() {
            t.tracer.hop(cyc, from, to);
        }
    }

    /// Record that tainted state became architecturally visible (DMA out).
    pub fn taint_arch(&mut self, structure: &'static str) {
        let cyc = self.cycle;
        if let Some(t) = self.taint.as_deref_mut() {
            t.tracer.arch_reach(cyc, structure);
        }
    }

    pub fn state(&self) -> AccelState {
        self.state
    }

    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Look up a memory by reference.
    pub fn mem(&mut self, m: MemRef) -> &mut Sram {
        match m {
            MemRef::Spm(i) => &mut self.spms[i],
            MemRef::RegBank(i) => &mut self.regbanks[i],
        }
    }

    pub fn mem_ref(&self, m: MemRef) -> &Sram {
        match m {
            MemRef::Spm(i) => &self.spms[i],
            MemRef::RegBank(i) => &self.regbanks[i],
        }
    }

    /// Total area in arbitrary units: FUs + on-chip SRAM.
    pub fn area(&self) -> f64 {
        let sram: usize = self.spms.iter().chain(&self.regbanks).map(|s| s.size()).sum();
        self.fu.fu_area() + sram as f64 * 0.004
    }

    /// Export execution and on-chip-memory counters into a telemetry
    /// registry under `scope` (e.g. `accel.gemm.spm0.reads`).
    pub fn publish_metrics(&self, reg: &marvel_telemetry::Registry, scope: &marvel_telemetry::Scope) {
        if !reg.is_enabled() {
            return;
        }
        reg.publish_scoped(scope, "cycles", self.cycle);
        reg.publish_scoped(scope, "compute_cycles", self.stats.compute_cycles);
        reg.publish_scoped(scope, "nodes_executed", self.stats.nodes_executed);
        reg.publish_scoped(scope, "blocks_executed", self.stats.blocks_executed);
        reg.publish_scoped(scope, "mem_reads", self.stats.mem_reads);
        reg.publish_scoped(scope, "mem_writes", self.stats.mem_writes);
        reg.publish_scoped(scope, "node_evals", self.stats.node_evals);
        reg.publish_scoped(scope, "memo_hits", self.stats.memo_hits);
        for (i, s) in self.spms.iter().enumerate() {
            let sc = scope.indexed("spm", i);
            reg.publish_scoped(&sc, "reads", s.reads);
            reg.publish_scoped(&sc, "writes", s.writes);
        }
        for (i, s) in self.regbanks.iter().enumerate() {
            let sc = scope.indexed("regbank", i);
            reg.publish_scoped(&sc, "reads", s.reads);
            reg.publish_scoped(&sc, "writes", s.writes);
        }
    }

    /// Restore this accelerator to the pristine checkpoint it was cloned
    /// from, for the zero-copy campaign reset. SRAM data uses the dirty
    /// watermarks; the (immutable-during-runs) CDFG is not copied. Returns
    /// state bytes copied.
    pub fn reset_from(&mut self, pristine: &Accelerator) -> u64 {
        let mut bytes = 0u64;
        for (s, p) in self.spms.iter_mut().zip(&pristine.spms) {
            bytes += s.reset_from(p);
        }
        for (s, p) in self.regbanks.iter_mut().zip(&pristine.regbanks) {
            bytes += s.reset_from(p);
        }
        bytes += self.mmr.reset_from(&pristine.mmr);
        self.fu = pristine.fu;
        self.state = pristine.state;
        self.exec.clone_from(&pristine.exec);
        self.cycle = pristine.cycle;
        self.irq = pristine.irq;
        self.stats = pristine.stats.clone();
        // Per-run taint plane: the pristine checkpoint never carries one.
        self.taint.clone_from(&pristine.taint);
        self.engine = pristine.engine;
        // The schedule is immutable and Arc-shared (pointer copy); the
        // replay cursor is positional state and must be restored.
        self.schedule.clone_from(&pristine.schedule);
        self.replay.clone_from(&pristine.replay);
        bytes + std::mem::size_of::<AccelStats>() as u64 + 32
    }

    /// Functional-state equality against a pristine snapshot at the same
    /// cycle, for the convergence exit: execution state, memories and MMRs
    /// must match; statistics, armed fates, stuck lists and taint shadows
    /// are observational and excluded.
    pub fn state_eq(&self, pristine: &Accelerator) -> bool {
        self.state == pristine.state
            && self.cycle == pristine.cycle
            && self.irq == pristine.irq
            && self.mmr.state_eq(&pristine.mmr)
            && match (&self.exec, &pristine.exec) {
                (None, None) => true,
                (Some(a), Some(b)) => a.func_eq(b),
                _ => false,
            }
            && self.spms.iter().zip(&pristine.spms).all(|(s, p)| s.state_eq(p))
            && self.regbanks.iter().zip(&pristine.regbanks).all(|(s, p)| s.state_eq(p))
            // Replay alignment is future-determining state: a run whose
            // control path has forked off the golden trace evaluates
            // differently from here on and must not be declared converged
            // against a still-aligned snapshot.
            && self.replay_aligned() == pristine.replay_aligned()
    }

    /// True when no live state carries taint (or tracking is off) — a
    /// precondition for the convergence exit when attribution is collected.
    pub fn taint_quiescent(&self) -> bool {
        self.spms.iter().chain(&self.regbanks).all(|s| s.taint_quiescent())
            && self.mmr.taint_quiescent()
            && self.exec.as_ref().is_none_or(|e| e.taint_quiescent())
            && self.taint.as_deref().is_none_or(|t| !t.ctl)
    }

    /// Start computation directly (standalone mode), passing entry-block
    /// arguments. Equivalent to writing the data MMRs then CTRL.start.
    pub fn start(&mut self, args: &[u64]) {
        for (i, &a) in args.iter().enumerate() {
            self.mmr.poke(MMR_DATA0 + i, a);
        }
        self.mmr.poke(MMR_CTRL, CTRL_START);
    }

    /// Reset to idle (keeps memory contents).
    pub fn reset(&mut self) {
        self.state = AccelState::Idle;
        self.exec = None;
        self.mmr.poke(MMR_CTRL, 0);
        self.mmr.poke(MMR_STATUS, 0);
        self.irq = false;
        self.stats = AccelStats::default();
    }

    fn enter_block(&mut self, block: usize, args: Vec<u64>, args_taint: Vec<u64>) {
        self.stats.blocks_executed += 1;
        let now = self.cycle;
        if let Some(rec) = self.recording.as_mut() {
            rec.entries.push((block as u32, now));
            rec.entry_args.push(args.clone());
        }
        // Replay alignment: the golden trace is only valid while the run
        // enters the same blocks at the same cycles. The cursor advances
        // only under the event engine, so cycle-engine runs never consume
        // (or invalidate) an armed trace.
        if self.engine == AccelEngine::Event {
            if let Some(r) = self.replay.as_mut() {
                if r.aligned {
                    match r.trace.entries.get(r.block_pos) {
                        Some(&(tb, tc)) if tb as usize == block && tc == now => r.block_pos += 1,
                        _ => r.aligned = false,
                    }
                }
            }
        }
        self.materialize_block(block, args, args_taint);
    }

    /// Construct the per-instance execution state of `block` at the
    /// current cycle. Split out of [`enter_block`] so the warp path can
    /// materialize a block whose entry bookkeeping (instance counter,
    /// replay-cursor consume) it has already performed itself.
    fn materialize_block(&mut self, block: usize, args: Vec<u64>, args_taint: Vec<u64>) {
        let n = self.cdfg.blocks[block].nodes.len();
        let track = self.taint.is_some();
        let now = self.cycle;
        self.exec = Some(BlockExec {
            block,
            args,
            vals: vec![0; n],
            done: vec![false; n],
            started: vec![false; n],
            pending: Vec::new(),
            remaining: n,
            entry_cycle: now,
            sched_pos: 0,
            args_taint,
            vals_taint: if track { vec![0; n] } else { Vec::new() },
        });
    }

    /// Advance one cycle.
    pub fn tick(&mut self) -> AccelState {
        self.cycle += 1;
        match self.state {
            AccelState::Idle => {
                // MMR-triggered start: entry args come from the data MMRs
                // (reads are monitored — an injected MMR fault activates
                // here).
                if self.mmr.peek(MMR_CTRL) & CTRL_START != 0 {
                    let n_args = self.cdfg.blocks[0].n_args;
                    let args: Vec<u64> =
                        (0..n_args).map(|i| self.mmr.read(MMR_DATA0 + i).unwrap_or(0)).collect();
                    let args_taint: Vec<u64> = if self.taint.is_some() {
                        let t: Vec<u64> =
                            (0..n_args).map(|i| self.mmr.taint_of(MMR_DATA0 + i)).collect();
                        if t.iter().any(|&x| x != 0) {
                            self.taint_hop("MMR", "FU");
                        }
                        t
                    } else {
                        Vec::new()
                    };
                    self.mmr.poke(MMR_CTRL, 0);
                    self.mmr.poke(MMR_STATUS, 0);
                    self.state = AccelState::Running;
                    self.enter_block(0, args, args_taint);
                }
            }
            AccelState::Running => {
                self.stats.compute_cycles += 1;
                self.step_block();
            }
            AccelState::Done | AccelState::Error(_) => {}
        }
        self.state
    }

    fn finish_with(&mut self, st: AccelState) {
        self.state = st;
        self.exec = None;
        let status = match st {
            AccelState::Done => STATUS_DONE,
            AccelState::Error(_) => STATUS_DONE | STATUS_ERROR,
            _ => 0,
        };
        self.mmr.poke(MMR_STATUS, status);
        self.irq = true;
    }

    fn step_block(&mut self) {
        let now = self.cycle;
        let mut ex = self.exec.take().expect("running without exec state");

        // 1. retire completions.
        let mut i = 0;
        while i < ex.pending.len() {
            if ex.pending[i].0 <= now {
                let (_, ni) = ex.pending.swap_remove(i);
                ex.done[ni as usize] = true;
                ex.remaining -= 1;
            } else {
                i += 1;
            }
        }

        // 2. block complete → terminator.
        if ex.remaining == 0 {
            self.run_terminator(ex);
            return;
        }

        // 3. issue ready nodes under FU constraints.
        let mut int_left = self.fu.int_alu;
        let mut fpa_left = self.fu.fp_add;
        let mut fpm_left = self.fu.fp_mul;
        let mut mem_used: Vec<(MemRef, usize)> = Vec::new();

        let block = ex.block;
        let n_nodes = self.cdfg.blocks[block].nodes.len();
        for ni in 0..n_nodes {
            if ex.started[ni] {
                continue;
            }
            let node = self.cdfg.blocks[block].nodes[ni];
            // Operand readiness.
            let ready = [node.a, node.b, node.c].iter().all(|&o| o == NODE_NONE || ex.done[o as usize]);
            if !ready {
                continue;
            }
            // Per-memory ordering: loads wait for earlier unfinished
            // stores (RAW) and stores wait for earlier unfinished loads
            // (WAR); same-kind accesses proceed in parallel. Designs must
            // not issue two same-block stores to one address (WAW), which
            // none of the MachSuite kernels do.
            if let Some(m) = node.op.is_mem() {
                let blocked = self.cdfg.blocks[block].nodes[..ni].iter().enumerate().any(|(pi, p)| {
                    p.op.is_mem() == Some(m) && !ex.done[pi] && (p.op.is_store() != node.op.is_store())
                });
                if blocked {
                    continue;
                }
            }
            // FU availability.
            match node.op.fu_class() {
                FuClass::Free => {}
                FuClass::IntAlu => {
                    if int_left == 0 {
                        continue;
                    }
                    int_left -= 1;
                }
                FuClass::FpAdd => {
                    if fpa_left == 0 {
                        continue;
                    }
                    fpa_left -= 1;
                }
                FuClass::FpMul => {
                    if fpm_left == 0 {
                        continue;
                    }
                    fpm_left -= 1;
                }
                FuClass::MemPort(m) => {
                    let ports = self.mem_ref(m).ports;
                    let used = mem_used.iter_mut().find(|(mm, _)| *mm == m);
                    match used {
                        Some((_, u)) => {
                            if *u >= ports {
                                continue;
                            }
                            *u += 1;
                        }
                        None => mem_used.push((m, 1)),
                    }
                }
            }

            // Execute.
            if !self.exec_node(&mut ex, ni, now) {
                return;
            }
        }

        self.exec = Some(ex);
    }

    /// Block terminator: finish, or pass block arguments (with taint and
    /// control-poison bookkeeping) to the successor. Shared verbatim by
    /// both engines — branch direction is the one control decision replay
    /// cannot precompute.
    fn run_terminator(&mut self, ex: BlockExec) {
        let track = self.taint.is_some();
        let term = self.cdfg.blocks[ex.block].term.clone();
        let taint_of = |ex: &BlockExec, a: u32, ctl: bool| -> u64 {
            ex.vals_taint.get(a as usize).copied().unwrap_or(0) | if ctl { !0 } else { 0 }
        };
        match term {
            Terminator::Finish => {
                self.finish_with(AccelState::Done);
            }
            Terminator::Jump { target, args } => {
                let vals: Vec<u64> = args.iter().map(|&a| ex.vals[a as usize]).collect();
                let ctl = self.taint.as_deref().is_some_and(|t| t.ctl);
                let vt: Vec<u64> = if track {
                    args.iter().map(|&a| taint_of(&ex, a, ctl)).collect()
                } else {
                    Vec::new()
                };
                self.enter_block(target, vals, vt);
            }
            Terminator::Branch { cond, then_, else_ } => {
                // A tainted condition poisons control flow for good:
                // the very choice of path is now fault-dependent.
                if ex.vals_taint.get(cond as usize).copied().unwrap_or(0) != 0 {
                    if let Some(t) = self.taint.as_deref_mut() {
                        t.ctl = true;
                    }
                }
                let (t, args) = if ex.vals[cond as usize] != 0 { then_ } else { else_ };
                let vals: Vec<u64> = args.iter().map(|&a| ex.vals[a as usize]).collect();
                let ctl = self.taint.as_deref().is_some_and(|t| t.ctl);
                let vt: Vec<u64> = if track {
                    args.iter().map(|&a| taint_of(&ex, a, ctl)).collect()
                } else {
                    Vec::new()
                };
                self.enter_block(t, vals, vt);
            }
        }
    }

    /// Fire node `ni` of the running block at cycle `now`: the shared
    /// issue body of the cycle engine's scan loop and the event engine's
    /// precomputed fire list (readiness and FU arbitration are the
    /// caller's responsibility). Returns `false` when the node raised a
    /// datapath error: the accelerator has finished and `ex` must be
    /// dropped, not stored back.
    fn exec_node(&mut self, ex: &mut BlockExec, ni: usize, now: u64) -> bool {
        let node = self.cdfg.blocks[ex.block].nodes[ni];
        ex.started[ni] = true;
        self.stats.nodes_executed += 1;
        // Golden-trace cursor: one slot per fire in global order,
        // consumed only while the replay is aligned with the recorded
        // control path.
        let trace_val = match self.replay.as_mut() {
            Some(r) if self.engine == AccelEngine::Event && r.aligned => {
                match r.trace.fire_vals.get(r.fire_pos) {
                    Some(&v) => {
                        r.fire_pos += 1;
                        // Keep the warp path's load/store cursors in
                        // lock-step with the fire cursor.
                        match node.op {
                            NodeOp::Load { .. } => r.load_pos += 1,
                            NodeOp::Store { .. } => r.store_pos += 1,
                            _ => {}
                        }
                        Some(v)
                    }
                    None => {
                        r.aligned = false;
                        None
                    }
                }
            }
            _ => None,
        };
        let a = if node.a == NODE_NONE { 0 } else { ex.vals[node.a as usize] };
        let b = if node.b == NODE_NONE { 0 } else { ex.vals[node.b as usize] };
        let c = if node.c == NODE_NONE { 0 } else { ex.vals[node.c as usize] };
        let track = self.taint.is_some();
        let tof = |t: &[u64], n: u32| if n == NODE_NONE { 0 } else { t[n as usize] };
        let (ta, tb, tc) = if track {
            (tof(&ex.vals_taint, node.a), tof(&ex.vals_taint, node.b), tof(&ex.vals_taint, node.c))
        } else {
            (0, 0, 0)
        };
        let mut lat = node.op.latency();

        // Memoized replay: while the control path matches the golden
        // trace, a node whose inputs carry no taint is bit-identical to
        // the golden run — take its recorded value instead of
        // re-evaluating. Loads must additionally prove the read range
        // untainted and still touch the memory (access tally + armed-bit
        // fate are observable); stores always execute (memory contents
        // must evolve, and a clean store is what washes taint away).
        if track && trace_val.is_some() {
            let memo = match node.op {
                NodeOp::Alu(_)
                | NodeOp::FAdd
                | NodeOp::FSub
                | NodeOp::FMul
                | NodeOp::FDiv
                | NodeOp::FCmpLt
                | NodeOp::ItoF
                | NodeOp::FtoI
                | NodeOp::Select => (ta | tb | tc) == 0,
                NodeOp::Load { mem, w } => {
                    ta == 0
                        && !self.mem_ref(mem).taint_any(a as usize, w as usize)
                        && self.mem(mem).touch_read(a, w as usize)
                }
                _ => false,
            };
            if memo {
                self.stats.memo_hits += 1;
                if let NodeOp::Load { mem, .. } = node.op {
                    self.stats.mem_reads += 1;
                    lat += self.mem_ref(mem).kind.read_latency();
                }
                ex.vals[ni] = trace_val.unwrap_or(0);
                ex.vals_taint[ni] = 0;
                if lat == 0 {
                    ex.done[ni] = true;
                    ex.remaining -= 1;
                } else {
                    ex.pending.push((now + lat as u64, ni as u32));
                }
                return true;
            }
        }

        match node.op {
            NodeOp::Const(_) | NodeOp::Arg(_) | NodeOp::Store { .. } => {}
            _ => self.stats.node_evals += 1,
        }
        let val = match node.op {
            NodeOp::Const(v) => v,
            NodeOp::Arg(k) => ex.args[k],
            NodeOp::Alu(op) => op.eval(a, b, Isa::RiscV).expect("riscv alu never traps"),
            NodeOp::FAdd => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
            NodeOp::FSub => (f64::from_bits(a) - f64::from_bits(b)).to_bits(),
            NodeOp::FMul => (f64::from_bits(a) * f64::from_bits(b)).to_bits(),
            NodeOp::FDiv => (f64::from_bits(a) / f64::from_bits(b)).to_bits(),
            NodeOp::FCmpLt => (f64::from_bits(a) < f64::from_bits(b)) as u64,
            NodeOp::ItoF => ((a as i64) as f64).to_bits(),
            NodeOp::FtoI => (f64::from_bits(a) as i64) as u64,
            NodeOp::Select => {
                if c != 0 {
                    a
                } else {
                    b
                }
            }
            NodeOp::Load { mem, w } => {
                self.stats.mem_reads += 1;
                lat += self.mem_ref(mem).kind.read_latency();
                match self.mem(mem).read(a, w as usize) {
                    Some(v) => {
                        if track {
                            let mname = self.mem_ref(mem).kind.name();
                            let t = self.mem_ref(mem).taint_read(a, w as usize)
                                | if ta != 0 { !0 } else { 0 };
                            if t != 0 {
                                self.taint_hop(mname, "FU");
                            }
                            ex.vals_taint[ni] = t;
                        }
                        v
                    }
                    None => {
                        let (is_spm, idx) = match mem {
                            MemRef::Spm(i) => (true, i),
                            MemRef::RegBank(i) => (false, i),
                        };
                        self.finish_with(AccelState::Error(AccelError::OutOfBounds {
                            mem_is_spm: is_spm,
                            mem_idx: idx,
                            addr: a,
                        }));
                        return false;
                    }
                }
            }
            NodeOp::Store { mem, w } => {
                self.stats.mem_writes += 1;
                match self.mem(mem).write(a, w as usize, b) {
                    Some(()) => {
                        if track {
                            let ctl = self.taint.as_deref().is_some_and(|t| t.ctl);
                            let t = tb | if ta != 0 || ctl { !0 } else { 0 };
                            let mname = self.mem_ref(mem).kind.name();
                            self.mem(mem).taint_write(a, w as usize, t);
                            if t != 0 {
                                self.taint_hop("FU", mname);
                            }
                        }
                        0
                    }
                    None => {
                        let (is_spm, idx) = match mem {
                            MemRef::Spm(i) => (true, i),
                            MemRef::RegBank(i) => (false, i),
                        };
                        self.finish_with(AccelState::Error(AccelError::OutOfBounds {
                            mem_is_spm: is_spm,
                            mem_idx: idx,
                            addr: a,
                        }));
                        return false;
                    }
                }
            }
        };
        if track {
            ex.vals_taint[ni] = match node.op {
                NodeOp::Const(_) => 0,
                NodeOp::Arg(k) => ex.args_taint.get(k).copied().unwrap_or(0),
                NodeOp::Alu(op) => alu_taint(taint_kind(op), ta, tb, b),
                // FP and conversions mix bits non-locally: any tainted
                // input poisons the whole result.
                NodeOp::FAdd
                | NodeOp::FSub
                | NodeOp::FMul
                | NodeOp::FDiv
                | NodeOp::FCmpLt
                | NodeOp::ItoF
                | NodeOp::FtoI => {
                    if (ta | tb) != 0 {
                        !0
                    } else {
                        0
                    }
                }
                // A tainted select condition could pick either input.
                NodeOp::Select => {
                    if tc != 0 {
                        !0
                    } else if c != 0 {
                        ta
                    } else {
                        tb
                    }
                }
                NodeOp::Load { .. } => ex.vals_taint[ni], // set above
                NodeOp::Store { .. } => 0,
            };
        }
        if let Some(rec) = self.recording.as_mut() {
            rec.fire_vals.push(val);
            match node.op {
                NodeOp::Load { .. } => rec.load_addrs.push(a),
                NodeOp::Store { .. } => rec.store_ops.push((a, b)),
                _ => {}
            }
        }
        ex.vals[ni] = val;
        if lat == 0 {
            ex.done[ni] = true;
            ex.remaining -= 1;
        } else {
            ex.pending.push((now + lat as u64, ni as u32));
        }
        true
    }

    // ---- event engine ----

    /// Advance up to `max_cycles`, returning the resulting state and the
    /// cycles actually consumed (always `max_cycles` unless the run left
    /// `Idle`/`Running` earlier). Under the cycle engine this is a plain
    /// tick loop; under the event engine it jumps straight between
    /// schedule events, bulk-charging the skipped compute cycles.
    pub fn advance(&mut self, max_cycles: u64) -> (AccelState, u64) {
        if self.engine == AccelEngine::Cycle || self.schedule.is_none() {
            let mut used = 0;
            while used < max_cycles {
                used += 1;
                match self.tick() {
                    AccelState::Idle | AccelState::Running => {}
                    _ => break,
                }
            }
            return (self.state, used);
        }
        let mut left = max_cycles;
        loop {
            match self.state {
                AccelState::Idle => {
                    if left == 0 {
                        break;
                    }
                    if self.mmr.peek(MMR_CTRL) & CTRL_START != 0 {
                        // The start handshake is a single tick.
                        self.tick();
                        left -= 1;
                    } else {
                        // Nothing can happen until software pokes CTRL.
                        self.cycle += left;
                        left = 0;
                    }
                }
                AccelState::Running => {
                    if left == 0 {
                        break;
                    }
                    let warped = self.try_warp(left);
                    if warped > 0 {
                        left -= warped;
                        continue;
                    }
                    let coned = self.try_cone(left);
                    if coned > 0 {
                        left -= coned;
                        continue;
                    }
                    let next = self.next_event_cycle();
                    let delta = next - self.cycle;
                    if delta > left {
                        self.cycle += left;
                        self.stats.compute_cycles += left;
                        left = 0;
                    } else {
                        self.cycle += delta;
                        self.stats.compute_cycles += delta;
                        left -= delta;
                        self.step_event();
                    }
                }
                AccelState::Done | AccelState::Error(_) => break,
            }
        }
        (self.state, max_cycles - left)
    }

    /// Whole-block warp: replay an entire block instance in one step when
    /// it provably touches no tainted data, applying only the recorded
    /// stores and skipping per-fire execution. Returns the cycles
    /// consumed (0 = not eligible, fall back to per-fire stepping).
    ///
    /// Eligibility is checked against the state *at block entry*: the
    /// replay must be aligned, control flow unpoisoned, the block
    /// instance fresh (nothing issued or in flight), every entry argument
    /// untainted, and the whole block must fit inside the caller's cycle
    /// budget (so DMA stop patterns and early-termination polls observe
    /// identical boundaries). Phase A then walks the schedule's load
    /// manifest read-only: every load must see fully untainted bytes at
    /// its golden address. Checking in fire order is sound — the i-th
    /// load's runtime address equals its golden address as long as every
    /// earlier fire was clean, and clean stores only ever *remove* taint.
    /// Any tainted load aborts before any state is touched. Faults that
    /// act at access time stay correct for free: a pending fate byte and
    /// permanently stuck bits keep their shadow bytes tainted, so any
    /// load that could observe them aborts the warp, and stores go
    /// through the ordinary [`Sram::write`] (fate transition, dirty
    /// watermark, stuck reassert) exactly as per-fire execution would.
    fn try_warp(&mut self, left: u64) -> u64 {
        if self.recording.is_some() {
            return 0;
        }
        let Some(t) = self.taint.as_deref() else { return 0 };
        if t.ctl {
            return 0;
        }
        if !matches!(self.replay.as_ref(), Some(r) if r.aligned) || self.schedule.is_none() {
            return 0;
        }
        let (mut block, mut entry_cycle) = {
            let Some(ex) = self.exec.as_ref() else { return 0 };
            let n = self.cdfg.blocks[ex.block].nodes.len();
            if ex.sched_pos != 0
                || !ex.pending.is_empty()
                || ex.remaining != n
                || ex.args_taint.iter().any(|&x| x != 0)
            {
                return 0;
            }
            (ex.block, ex.entry_cycle)
        };
        let sched = Arc::clone(self.schedule.as_ref().unwrap());
        let trace = Arc::clone(&self.replay.as_ref().unwrap().trace);
        let mut consumed = 0u64;
        // `chained_at`: index into `trace.entries` of the current block's
        // entry when the chain has logically entered it (counter bumped,
        // cursor consumed) but no `BlockExec` exists yet. `None` on the
        // first iteration, where `self.exec` still holds the live state.
        let mut chained_at: Option<usize> = None;
        loop {
            let bs = &sched.blocks[block];
            let delta = (entry_cycle + bs.term_rel as u64).saturating_sub(self.cycle);
            let r = self.replay.as_ref().unwrap();
            let (load_pos, store_pos) = (r.load_pos, r.store_pos);
            let fits = delta > 0
                && delta <= left - consumed
                && r.fire_pos + bs.fires.len() <= trace.fire_vals.len()
                && load_pos + bs.loads.len() <= trace.load_addrs.len()
                && store_pos + bs.stores.len() <= trace.store_ops.len()
                // Phase A (read-only): every load must see untainted data
                // at its golden address. Checked before anything mutates.
                && bs.loads.iter().enumerate().all(|(i, &(mem, w))| {
                    let addr = trace.load_addrs[load_pos + i] as usize;
                    !self.mem_ref(mem).taint_any(addr, w as usize)
                });
            if !fits {
                // Chain breaks before this block commits: hand it to the
                // per-fire engine. Its entry bookkeeping already happened
                // (at `enter_block` for the first block, inline below for
                // chained ones), so only the exec state is materialized.
                if let Some(ei) = chained_at {
                    let args = trace.entry_args[ei].clone();
                    let zt = vec![0u64; args.len()];
                    self.materialize_block(block, args, zt);
                }
                return consumed;
            }
            // Commit: recorded stores land with their golden values (a
            // clean store is what washes taint), loads count in the
            // access tally.
            for (i, &(mem, w)) in bs.stores.iter().enumerate() {
                let (addr, val) = trace.store_ops[store_pos + i];
                let m = self.mem(mem);
                m.write(addr, w as usize, val).expect("golden store stays in bounds");
                m.taint_write(addr, w as usize, 0);
            }
            for &(mem, _) in &bs.loads {
                self.mem(mem).reads += 1;
            }
            let n = self.cdfg.blocks[block].nodes.len();
            self.stats.nodes_executed += n as u64;
            self.stats.memo_hits += bs.n_memoizable;
            self.stats.warp_blocks += 1;
            self.stats.mem_reads += bs.loads.len() as u64;
            self.stats.mem_writes += bs.stores.len() as u64;
            self.stats.compute_cycles += delta;
            self.cycle += delta;
            consumed += delta;
            if chained_at.is_none() {
                self.exec = None;
            }
            let block_pos = {
                let r = self.replay.as_mut().unwrap();
                r.fire_pos += bs.fires.len();
                r.load_pos += bs.loads.len();
                r.store_pos += bs.stores.len();
                r.block_pos
            };
            // The recorded successor entry stands in for the terminator:
            // with every value golden, the branch goes exactly where the
            // golden run went. No next entry means the golden run
            // finished here. Entering the successor ourselves (counter +
            // cursor, no exec state) keeps the chain allocation-free.
            match trace.entries.get(block_pos).copied() {
                Some((b2, c2)) => {
                    debug_assert_eq!(c2, self.cycle, "warped terminator out of step with the trace");
                    self.replay.as_mut().unwrap().block_pos += 1;
                    self.stats.blocks_executed += 1;
                    block = b2 as usize;
                    entry_cycle = c2;
                    chained_at = Some(block_pos);
                }
                None => {
                    self.finish_with(AccelState::Done);
                    return consumed;
                }
            }
        }
    }

    /// One-pass block execution: batch every schedule event of the
    /// running block when the whole block fits inside the caller's cycle
    /// budget. Fires run in schedule order at their scheduled cycles
    /// (bulk-charging the skipped compute cycles) and the terminator runs
    /// at the block's terminator cycle — exactly the sequence per-event
    /// stepping would produce, minus the advance-loop and `step_event`
    /// scan paid at every intermediate event cycle.
    ///
    /// Unlike the whole-block warp this path tolerates taint anywhere:
    /// tainted loads, tainted entry arguments, even control poison. Every
    /// node still goes through [`Self::exec_node`], so memoization,
    /// taint propagation, access-time fate transitions, stuck-bit
    /// reassertion and trace-cursor bookkeeping are byte-identical to
    /// per-fire stepping; it is a pure batching of the event loop. This
    /// is what keeps stuck-at campaigns fast: a permanent fault's taint
    /// cone (blocks whose loads genuinely observe the stuck byte) cannot
    /// be warped, but its blocks collapse to one pass each instead of an
    /// event-queue iteration per fire cycle.
    fn try_cone(&mut self, left: u64) -> u64 {
        if self.engine != AccelEngine::Event || self.recording.is_some() {
            return 0;
        }
        let Some(sched) = self.schedule.clone() else { return 0 };
        {
            // Fresh block instance only (nothing issued or in flight),
            // and the whole block must fit the budget so DMA stop
            // patterns, ladder rungs and early-termination polls observe
            // identical cycle boundaries to per-fire stepping.
            let Some(ex) = self.exec.as_ref() else { return 0 };
            if ex.sched_pos != 0
                || !ex.pending.is_empty()
                || ex.remaining != self.cdfg.blocks[ex.block].nodes.len()
            {
                return 0;
            }
            let delta =
                (ex.entry_cycle + sched.blocks[ex.block].term_rel as u64).saturating_sub(self.cycle);
            if delta == 0 || delta > left {
                return 0;
            }
        }
        let mut ex = self.exec.take().expect("checked above");
        let bs = &sched.blocks[ex.block];
        let start = self.cycle;
        for &(r, ni) in &bs.fires {
            let at = ex.entry_cycle + r as u64;
            if at > self.cycle {
                self.stats.compute_cycles += at - self.cycle;
                self.cycle = at;
            }
            ex.sched_pos += 1;
            if !self.exec_node(&mut ex, ni as usize, at) {
                // Datapath error: the accelerator finished at this fire's
                // cycle; report exactly the cycles consumed so far.
                return self.cycle - start;
            }
        }
        let term = ex.entry_cycle + bs.term_rel as u64;
        self.stats.compute_cycles += term - self.cycle;
        self.cycle = term;
        // Every completion is due by the terminator cycle by schedule
        // construction: retire them all and run the terminator.
        for &(due, ni) in &ex.pending {
            debug_assert!(due <= term, "completion past the terminator cycle");
            ex.done[ni as usize] = true;
            ex.remaining -= 1;
        }
        ex.pending.clear();
        debug_assert_eq!(ex.remaining, 0, "one-pass block left nodes unfired");
        self.run_terminator(ex);
        self.cycle - start
    }

    /// The next cycle at which anything fires or the terminator runs.
    /// Always strictly ahead of `self.cycle`: the schedule's first fire
    /// is at relative cycle 1, and past the last fire the terminator
    /// cycle is itself beyond every completion.
    fn next_event_cycle(&self) -> u64 {
        let ex = self.exec.as_ref().expect("running without exec state");
        let bs = &self.schedule.as_ref().expect("event engine without schedule").blocks[ex.block];
        let rel = match bs.fires.get(ex.sched_pos as usize) {
            Some(&(r, _)) => r,
            None => bs.term_rel,
        };
        let next = ex.entry_cycle + rel as u64;
        debug_assert!(next > self.cycle, "schedule event not in the future");
        next.max(self.cycle + 1)
    }

    /// Process one event cycle (`self.cycle`): retire due completions,
    /// run the terminator once the block has drained, otherwise issue
    /// this cycle's precomputed fires in schedule order.
    fn step_event(&mut self) {
        let now = self.cycle;
        let mut ex = self.exec.take().expect("running without exec state");
        let mut i = 0;
        while i < ex.pending.len() {
            if ex.pending[i].0 <= now {
                let (_, ni) = ex.pending.swap_remove(i);
                ex.done[ni as usize] = true;
                ex.remaining -= 1;
            } else {
                i += 1;
            }
        }
        if ex.remaining == 0 {
            self.run_terminator(ex);
            return;
        }
        let sched = self.schedule.clone().expect("event engine without schedule");
        let bs = &sched.blocks[ex.block];
        let rel = (now - ex.entry_cycle) as u32;
        while let Some(&(r, ni)) = bs.fires.get(ex.sched_pos as usize) {
            if r != rel {
                break;
            }
            ex.sched_pos += 1;
            if !self.exec_node(&mut ex, ni as usize, now) {
                return;
            }
        }
        self.exec = Some(ex);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::air::CdfgBuilder;
    use crate::sram::SramKind;
    use marvel_isa::AluOp;

    /// Sum the first `n` u64 words of SPM0 into SPM1[0].
    fn sum_accel(fu: FuConfig) -> Accelerator {
        let mut g = CdfgBuilder::new();
        let entry = g.block(1); // arg0 = n
        let body = g.block(3); // i, n, acc
        let done = g.block(1); // acc
        g.select(entry);
        let n = g.arg(0);
        let z = g.konst(0);
        g.jump(body, &[z, n, z]);
        g.select(body);
        let i = g.arg(0);
        let n = g.arg(1);
        let acc = g.arg(2);
        let eight = g.konst(8);
        let addr = g.alu(AluOp::Mul, i, eight);
        let v = g.load(MemRef::Spm(0), 8, addr);
        let acc2 = g.alu(AluOp::Add, acc, v);
        let one = g.konst(1);
        let i2 = g.alu(AluOp::Add, i, one);
        let more = g.alu(AluOp::Sltu, i2, n);
        g.branch(more, body, &[i2, n, acc2], done, &[acc2]);
        g.select(done);
        let acc = g.arg(0);
        let z = g.konst(0);
        g.store(MemRef::Spm(1), 8, z, acc);
        g.finish();

        let spm0 = Sram::new("IN", SramKind::Spm, 256, 2);
        let spm1 = Sram::new("OUT", SramKind::Spm, 8, 1);
        Accelerator::new("sum", g.build().unwrap(), fu, vec![spm0, spm1], vec![], 1)
    }

    fn run(a: &mut Accelerator, max: u64) -> AccelState {
        for _ in 0..max {
            match a.tick() {
                AccelState::Running | AccelState::Idle => {}
                s => return s,
            }
        }
        panic!("accelerator did not finish");
    }

    #[test]
    fn computes_sum() {
        let mut a = sum_accel(FuConfig::default());
        for i in 0..16u64 {
            a.spms[0].write(i * 8, 8, i + 1).unwrap();
        }
        a.start(&[16]);
        let st = run(&mut a, 10_000);
        assert_eq!(st, AccelState::Done);
        assert_eq!(a.spms[1].read(0, 8).unwrap(), 136); // 1+..+16
        assert!(a.stats.compute_cycles > 16);
        assert!(a.irq);
    }

    /// A block with 16 independent FP multiplies: FU-bound, not
    /// latency-bound.
    fn parallel_accel(fu: FuConfig) -> Accelerator {
        let mut g = CdfgBuilder::new();
        let b = g.block(0);
        g.select(b);
        let mut prods = Vec::new();
        for i in 0..16u64 {
            let addr = g.konst(i * 8);
            let v = g.load(MemRef::Spm(0), 8, addr);
            let k = g.fconst(1.5);
            prods.push(g.fmul(v, k));
        }
        for (i, p) in prods.into_iter().enumerate() {
            let addr = g.konst(i as u64 * 8);
            g.store(MemRef::Spm(1), 8, addr, p);
        }
        g.finish();
        let spm0 = Sram::new("IN", SramKind::Spm, 128, 4);
        let spm1 = Sram::new("OUT", SramKind::Spm, 128, 4);
        Accelerator::new("par", g.build().unwrap(), fu, vec![spm0, spm1], vec![], 0)
    }

    #[test]
    fn fewer_fus_run_slower() {
        // A serial loop is latency-bound (FU count irrelevant); a parallel
        // block is FU-bound. Check both properties.
        let mut fast = parallel_accel(FuConfig::uniform(16));
        let mut slow = parallel_accel(FuConfig::uniform(1));
        for a in [&mut fast, &mut slow] {
            for i in 0..16u64 {
                a.spms[0].write(i * 8, 8, 1.0f64.to_bits()).unwrap();
            }
            a.start(&[]);
            run(a, 100_000);
        }
        assert!(
            slow.stats.compute_cycles > fast.stats.compute_cycles,
            "slow {} vs fast {}",
            slow.stats.compute_cycles,
            fast.stats.compute_cycles
        );
        assert_eq!(slow.spms[1].read(0, 8), Some(1.5f64.to_bits()));

        let mut s1 = sum_accel(FuConfig::uniform(8));
        let mut s2 = sum_accel(FuConfig::uniform(2));
        for a in [&mut s1, &mut s2] {
            for i in 0..16u64 {
                a.spms[0].write(i * 8, 8, 1).unwrap();
            }
            a.start(&[16]);
            run(a, 100_000);
        }
        // Serial loop: nearly identical runtimes.
        let (c1, c2) = (s1.stats.compute_cycles as i64, s2.stats.compute_cycles as i64);
        assert!((c1 - c2).abs() <= c1 / 4, "serial loop should be latency-bound: {c1} vs {c2}");
    }

    #[test]
    fn out_of_bounds_is_error() {
        let mut a = sum_accel(FuConfig::default());
        a.start(&[64]); // 64*8 = 512 > 256-byte SPM
        let st = run(&mut a, 100_000);
        assert!(matches!(st, AccelState::Error(_)));
        assert_eq!(a.mmr.peek(crate::mmr::MMR_STATUS) & STATUS_ERROR, STATUS_ERROR);
    }

    #[test]
    fn spm_fault_changes_result() {
        let mut a = sum_accel(FuConfig::default());
        for i in 0..8u64 {
            a.spms[0].write(i * 8, 8, 2).unwrap();
        }
        a.spms[0].flip_bit(0); // word 0 bit 0: 2 -> 3
        a.start(&[8]);
        run(&mut a, 10_000);
        assert_eq!(a.spms[1].read(0, 8).unwrap(), 17);
        assert_eq!(a.spms[0].fate(), Some(crate::sram::SramFate::Read));
    }

    #[test]
    fn restart_after_reset() {
        let mut a = sum_accel(FuConfig::default());
        for i in 0..4u64 {
            a.spms[0].write(i * 8, 8, 5).unwrap();
        }
        a.start(&[4]);
        run(&mut a, 10_000);
        let c1 = a.stats.compute_cycles;
        a.reset();
        a.start(&[4]);
        let st = run(&mut a, 10_000);
        assert_eq!(st, AccelState::Done);
        assert_eq!(a.stats.compute_cycles, c1, "deterministic re-execution");
    }

    #[test]
    fn area_grows_with_fus_and_srams() {
        let small = sum_accel(FuConfig::uniform(1));
        let big = sum_accel(FuConfig::uniform(16));
        assert!(big.area() > small.area());
    }

    /// Run to completion via the event engine in one `advance` call.
    fn run_event(a: &mut Accelerator, max: u64) -> AccelState {
        assert!(a.prepare_event_engine(), "design must be schedulable");
        assert!(a.set_engine_event());
        let (st, _) = a.advance(max);
        st
    }

    #[test]
    fn event_engine_matches_cycle_oracle() {
        let mut cyc = sum_accel(FuConfig::default());
        let mut evt = sum_accel(FuConfig::default());
        for a in [&mut cyc, &mut evt] {
            for i in 0..16u64 {
                a.spms[0].write(i * 8, 8, i + 1).unwrap();
            }
            a.start(&[16]);
        }
        assert_eq!(run(&mut cyc, 10_000), AccelState::Done);
        assert_eq!(run_event(&mut evt, 10_000), AccelState::Done);
        assert_eq!(evt.spms[1].read(0, 8), cyc.spms[1].read(0, 8));
        assert_eq!(evt.cycle, cyc.cycle, "identical completion cycle");
        assert_eq!(evt.stats.compute_cycles, cyc.stats.compute_cycles);
        assert_eq!(evt.stats.nodes_executed, cyc.stats.nodes_executed);
        assert_eq!(evt.stats.mem_reads, cyc.stats.mem_reads);
        assert_eq!(evt.stats.mem_writes, cyc.stats.mem_writes);
        assert_eq!(evt.stats.blocks_executed, cyc.stats.blocks_executed);
    }

    #[test]
    fn event_engine_is_stop_pattern_independent() {
        // Advancing in awkward chunks must land on the same state as one
        // big advance: lazy retirement only happens at event cycles, so
        // where the harness pauses cannot be observable.
        let mut whole = parallel_accel(FuConfig::uniform(2));
        let mut chunked = parallel_accel(FuConfig::uniform(2));
        for a in [&mut whole, &mut chunked] {
            for i in 0..16u64 {
                a.spms[0].write(i * 8, 8, 2.0f64.to_bits()).unwrap();
            }
            a.start(&[]);
            assert!(a.prepare_event_engine());
            assert!(a.set_engine_event());
        }
        let (st, used) = whole.advance(10_000);
        assert_eq!(st, AccelState::Done);
        let mut total = 0;
        loop {
            let (st, n) = chunked.advance(3);
            total += n;
            if st == AccelState::Done {
                break;
            }
            assert!(total < 10_000);
        }
        assert_eq!(total, used, "same completion cycle");
        assert_eq!(chunked.cycle, whole.cycle);
        assert_eq!(chunked.spms[1].bytes(), whole.spms[1].bytes());
    }

    #[test]
    fn event_engine_reports_oob_error() {
        let mut a = sum_accel(FuConfig::default());
        a.start(&[64]); // 64*8 = 512 > 256-byte SPM
        let st = run_event(&mut a, 100_000);
        assert!(matches!(st, AccelState::Error(_)));
        let mut oracle = sum_accel(FuConfig::default());
        oracle.start(&[64]);
        run(&mut oracle, 100_000);
        assert_eq!(a.cycle, oracle.cycle, "error at the identical cycle");
    }

    #[test]
    fn golden_replay_memoizes_untainted_nodes() {
        // Record the golden firing trace.
        let mut g = sum_accel(FuConfig::default());
        for i in 0..16u64 {
            g.spms[0].write(i * 8, 8, i + 1).unwrap();
        }
        let pristine = g.clone();
        g.start(&[16]);
        assert!(g.prepare_event_engine());
        assert!(g.set_engine_event());
        g.begin_trace_recording();
        assert_eq!(g.advance(10_000).0, AccelState::Done);
        let trace = Arc::new(g.take_trace().unwrap());

        // Fault-free replay with taint planes on: every non-trivial fire
        // memoizes, nothing is evaluated.
        let mut r = pristine.clone();
        r.prepare_event_engine();
        r.set_engine_event();
        r.arm_replay(trace.clone());
        r.enable_taint("none");
        r.start(&[16]);
        assert_eq!(r.advance(10_000).0, AccelState::Done);
        assert_eq!(r.spms[1].read(0, 8), Some(136));
        assert_eq!(r.stats.node_evals, 0, "fault-free replay evaluates nothing");
        assert!(r.stats.memo_hits > 0);
        assert!(r.replay_aligned());

        // A faulty replay re-evaluates only the taint cone and still
        // matches the cycle oracle bit-for-bit.
        let mut f = pristine.clone();
        f.prepare_event_engine();
        f.set_engine_event();
        f.arm_replay(trace);
        f.enable_taint("spm0");
        f.spms[0].flip_bit(3); // word 0: 1 -> 9
        f.start(&[16]);
        assert_eq!(f.advance(10_000).0, AccelState::Done);
        let mut oracle = pristine.clone();
        oracle.spms[0].flip_bit(3);
        oracle.start(&[16]);
        run(&mut oracle, 10_000);
        assert_eq!(f.spms[1].read(0, 8), oracle.spms[1].read(0, 8));
        assert_eq!(f.cycle, oracle.cycle);
        assert!(f.stats.node_evals > 0, "the taint cone is evaluated");
        assert!(
            f.stats.node_evals < oracle.stats.nodes_executed / 2,
            "most fires memoize: {} evals vs {} golden fires",
            f.stats.node_evals,
            oracle.stats.nodes_executed
        );
    }
}
