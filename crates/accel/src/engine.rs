//! The accelerator compute unit: cycle-stepped CDFG execution with
//! functional-unit constraints and per-memory port limits — the
//! gem5-SALAM dynamic execution engine analogue.

use crate::air::{Cdfg, FuClass, MemRef, NodeOp, Terminator, NODE_NONE};
use crate::mmr::{Mmr, CTRL_START, MMR_CTRL, MMR_DATA0, MMR_STATUS, STATUS_DONE, STATUS_ERROR};
use crate::sram::Sram;
use marvel_isa::{AluOp, Isa};
use marvel_telemetry::{alu_taint, TaintAluKind, TaintTracer};

/// Map an ALU op onto its taint-transfer class (mirrors the CPU core).
fn taint_kind(op: AluOp) -> TaintAluKind {
    match op {
        AluOp::And | AluOp::Or | AluOp::Xor => TaintAluKind::Bitwise,
        AluOp::Add | AluOp::Sub => TaintAluKind::Arith,
        AluOp::Sll => TaintAluKind::ShiftLeft,
        AluOp::Srl | AluOp::Sra => TaintAluKind::ShiftRight,
        AluOp::Mul | AluOp::Div | AluOp::Rem | AluOp::Slt | AluOp::Sltu => TaintAluKind::Wide,
    }
}

/// marvel-taint state of an accelerator: the propagation tracer plus a
/// sticky control-poison flag (set once a tainted value decides a branch,
/// after which every store is suspect).
#[derive(Debug, Clone)]
pub struct AccelTaint {
    pub tracer: TaintTracer,
    ctl: bool,
}

/// Functional-unit configuration — the Fig. 17 design-space axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    pub int_alu: usize,
    pub fp_add: usize,
    pub fp_mul: usize,
}

impl FuConfig {
    pub fn uniform(n: usize) -> Self {
        FuConfig { int_alu: n, fp_add: n, fp_mul: n }
    }

    /// Analytic area estimate in arbitrary units (functional units only;
    /// memories are added by [`Accelerator::area`]).
    pub fn fu_area(&self) -> f64 {
        self.int_alu as f64 * 1.0 + self.fp_add as f64 * 2.5 + self.fp_mul as f64 * 4.0
    }
}

impl Default for FuConfig {
    fn default() -> Self {
        FuConfig::uniform(4)
    }
}

/// Datapath error conditions (classified as Crash by the injector).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccelError {
    /// A load/store fell outside its SPM/RegBank.
    OutOfBounds { mem_is_spm: bool, mem_idx: usize, addr: u64 },
}

impl std::fmt::Display for AccelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccelError::OutOfBounds { mem_is_spm, mem_idx, addr } => write!(
                f,
                "out-of-bounds access to {} {} at local address {addr:#x}",
                if *mem_is_spm { "SPM" } else { "RegBank" },
                mem_idx
            ),
        }
    }
}

impl std::error::Error for AccelError {}

/// Externally visible execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccelState {
    Idle,
    Running,
    Done,
    Error(AccelError),
}

/// Per-run statistics.
#[derive(Debug, Clone, Default)]
pub struct AccelStats {
    pub compute_cycles: u64,
    pub nodes_executed: u64,
    pub mem_reads: u64,
    pub mem_writes: u64,
    pub blocks_executed: u64,
}

#[derive(Debug, Clone)]
struct BlockExec {
    block: usize,
    args: Vec<u64>,
    vals: Vec<u64>,
    done: Vec<bool>,
    started: Vec<bool>,
    /// (completion cycle, node index)
    pending: Vec<(u64, u32)>,
    remaining: usize,
    /// marvel-taint shadows of `args`/`vals` (empty when tracking is off).
    args_taint: Vec<u64>,
    vals_taint: Vec<u64>,
}

impl BlockExec {
    /// Functional equality: the taint shadows are excluded (a faulty run
    /// with taint enabled allocates them; the pristine snapshot does not),
    /// their effect is checked separately via taint quiescence.
    fn func_eq(&self, other: &BlockExec) -> bool {
        self.block == other.block
            && self.args == other.args
            && self.vals == other.vals
            && self.done == other.done
            && self.started == other.started
            && self.pending == other.pending
            && self.remaining == other.remaining
    }

    fn taint_quiescent(&self) -> bool {
        self.args_taint.iter().all(|&t| t == 0) && self.vals_taint.iter().all(|&t| t == 0)
    }
}

/// A SALAM-style accelerator instance.
#[derive(Debug, Clone)]
pub struct Accelerator {
    pub name: String,
    pub cdfg: Cdfg,
    pub fu: FuConfig,
    pub spms: Vec<Sram>,
    pub regbanks: Vec<Sram>,
    pub mmr: Mmr,
    state: AccelState,
    exec: Option<BlockExec>,
    cycle: u64,
    /// Interrupt line (level); raised on completion, cleared by MMR access.
    pub irq: bool,
    pub stats: AccelStats,
    /// marvel-taint plane (`None` = off).
    taint: Option<Box<AccelTaint>>,
}

impl Accelerator {
    pub fn new(
        name: &str,
        cdfg: Cdfg,
        fu: FuConfig,
        spms: Vec<Sram>,
        regbanks: Vec<Sram>,
        n_args: usize,
    ) -> Self {
        cdfg.validate().expect("invalid CDFG");
        assert_eq!(cdfg.blocks[0].n_args, n_args, "entry block arg count mismatch");
        Accelerator {
            name: name.to_string(),
            cdfg,
            fu,
            spms,
            regbanks,
            mmr: Mmr::new(n_args),
            state: AccelState::Idle,
            exec: None,
            cycle: 0,
            irq: false,
            stats: AccelStats::default(),
            taint: None,
        }
    }

    // ---- marvel-taint control ----

    /// Enable taint tracking before fault arming: allocates the SRAM and
    /// MMR shadows plus the propagation tracer (`seed` labels the
    /// injection site).
    pub fn enable_taint(&mut self, seed: &str) {
        for s in self.spms.iter_mut().chain(self.regbanks.iter_mut()) {
            s.enable_taint();
        }
        self.mmr.enable_taint();
        // Enabling mid-run (a checkpoint-ladder rung restore) finds a block
        // already in flight whose shadows were never allocated: give it
        // zeroed planes — the fault-free prefix carries no taint.
        if let Some(ex) = self.exec.as_mut() {
            if ex.args_taint.len() < ex.args.len() {
                ex.args_taint = vec![0; ex.args.len()];
            }
            if ex.vals_taint.len() < ex.vals.len() {
                ex.vals_taint = vec![0; ex.vals.len()];
            }
        }
        self.taint = Some(Box::new(AccelTaint { tracer: TaintTracer::new(seed), ctl: false }));
    }

    pub fn taint_enabled(&self) -> bool {
        self.taint.is_some()
    }

    pub fn taint_tracer(&self) -> Option<&TaintTracer> {
        self.taint.as_deref().map(|t| &t.tracer)
    }

    /// Record a propagation hop on behalf of external movers (DMA).
    pub fn taint_hop(&mut self, from: &'static str, to: &'static str) {
        let cyc = self.cycle;
        if let Some(t) = self.taint.as_deref_mut() {
            t.tracer.hop(cyc, from, to);
        }
    }

    /// Record that tainted state became architecturally visible (DMA out).
    pub fn taint_arch(&mut self, structure: &'static str) {
        let cyc = self.cycle;
        if let Some(t) = self.taint.as_deref_mut() {
            t.tracer.arch_reach(cyc, structure);
        }
    }

    pub fn state(&self) -> AccelState {
        self.state
    }

    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Look up a memory by reference.
    pub fn mem(&mut self, m: MemRef) -> &mut Sram {
        match m {
            MemRef::Spm(i) => &mut self.spms[i],
            MemRef::RegBank(i) => &mut self.regbanks[i],
        }
    }

    pub fn mem_ref(&self, m: MemRef) -> &Sram {
        match m {
            MemRef::Spm(i) => &self.spms[i],
            MemRef::RegBank(i) => &self.regbanks[i],
        }
    }

    /// Total area in arbitrary units: FUs + on-chip SRAM.
    pub fn area(&self) -> f64 {
        let sram: usize = self.spms.iter().chain(&self.regbanks).map(|s| s.size()).sum();
        self.fu.fu_area() + sram as f64 * 0.004
    }

    /// Export execution and on-chip-memory counters into a telemetry
    /// registry under `scope` (e.g. `accel.gemm.spm0.reads`).
    pub fn publish_metrics(&self, reg: &marvel_telemetry::Registry, scope: &marvel_telemetry::Scope) {
        if !reg.is_enabled() {
            return;
        }
        reg.publish_scoped(scope, "cycles", self.cycle);
        reg.publish_scoped(scope, "compute_cycles", self.stats.compute_cycles);
        reg.publish_scoped(scope, "nodes_executed", self.stats.nodes_executed);
        reg.publish_scoped(scope, "blocks_executed", self.stats.blocks_executed);
        reg.publish_scoped(scope, "mem_reads", self.stats.mem_reads);
        reg.publish_scoped(scope, "mem_writes", self.stats.mem_writes);
        for (i, s) in self.spms.iter().enumerate() {
            let sc = scope.indexed("spm", i);
            reg.publish_scoped(&sc, "reads", s.reads);
            reg.publish_scoped(&sc, "writes", s.writes);
        }
        for (i, s) in self.regbanks.iter().enumerate() {
            let sc = scope.indexed("regbank", i);
            reg.publish_scoped(&sc, "reads", s.reads);
            reg.publish_scoped(&sc, "writes", s.writes);
        }
    }

    /// Restore this accelerator to the pristine checkpoint it was cloned
    /// from, for the zero-copy campaign reset. SRAM data uses the dirty
    /// watermarks; the (immutable-during-runs) CDFG is not copied. Returns
    /// state bytes copied.
    pub fn reset_from(&mut self, pristine: &Accelerator) -> u64 {
        let mut bytes = 0u64;
        for (s, p) in self.spms.iter_mut().zip(&pristine.spms) {
            bytes += s.reset_from(p);
        }
        for (s, p) in self.regbanks.iter_mut().zip(&pristine.regbanks) {
            bytes += s.reset_from(p);
        }
        bytes += self.mmr.reset_from(&pristine.mmr);
        self.fu = pristine.fu;
        self.state = pristine.state;
        self.exec.clone_from(&pristine.exec);
        self.cycle = pristine.cycle;
        self.irq = pristine.irq;
        self.stats = pristine.stats.clone();
        // Per-run taint plane: the pristine checkpoint never carries one.
        self.taint.clone_from(&pristine.taint);
        bytes + std::mem::size_of::<AccelStats>() as u64 + 32
    }

    /// Functional-state equality against a pristine snapshot at the same
    /// cycle, for the convergence exit: execution state, memories and MMRs
    /// must match; statistics, armed fates, stuck lists and taint shadows
    /// are observational and excluded.
    pub fn state_eq(&self, pristine: &Accelerator) -> bool {
        self.state == pristine.state
            && self.cycle == pristine.cycle
            && self.irq == pristine.irq
            && self.mmr.state_eq(&pristine.mmr)
            && match (&self.exec, &pristine.exec) {
                (None, None) => true,
                (Some(a), Some(b)) => a.func_eq(b),
                _ => false,
            }
            && self.spms.iter().zip(&pristine.spms).all(|(s, p)| s.state_eq(p))
            && self.regbanks.iter().zip(&pristine.regbanks).all(|(s, p)| s.state_eq(p))
    }

    /// True when no live state carries taint (or tracking is off) — a
    /// precondition for the convergence exit when attribution is collected.
    pub fn taint_quiescent(&self) -> bool {
        self.spms.iter().chain(&self.regbanks).all(|s| s.taint_quiescent())
            && self.mmr.taint_quiescent()
            && self.exec.as_ref().is_none_or(|e| e.taint_quiescent())
            && self.taint.as_deref().is_none_or(|t| !t.ctl)
    }

    /// Start computation directly (standalone mode), passing entry-block
    /// arguments. Equivalent to writing the data MMRs then CTRL.start.
    pub fn start(&mut self, args: &[u64]) {
        for (i, &a) in args.iter().enumerate() {
            self.mmr.poke(MMR_DATA0 + i, a);
        }
        self.mmr.poke(MMR_CTRL, CTRL_START);
    }

    /// Reset to idle (keeps memory contents).
    pub fn reset(&mut self) {
        self.state = AccelState::Idle;
        self.exec = None;
        self.mmr.poke(MMR_CTRL, 0);
        self.mmr.poke(MMR_STATUS, 0);
        self.irq = false;
        self.stats = AccelStats::default();
    }

    fn enter_block(&mut self, block: usize, args: Vec<u64>, args_taint: Vec<u64>) {
        let b = &self.cdfg.blocks[block];
        let n = b.nodes.len();
        self.stats.blocks_executed += 1;
        let track = self.taint.is_some();
        self.exec = Some(BlockExec {
            block,
            args,
            vals: vec![0; n],
            done: vec![false; n],
            started: vec![false; n],
            pending: Vec::new(),
            remaining: n,
            args_taint,
            vals_taint: if track { vec![0; n] } else { Vec::new() },
        });
    }

    /// Advance one cycle.
    pub fn tick(&mut self) -> AccelState {
        self.cycle += 1;
        match self.state {
            AccelState::Idle => {
                // MMR-triggered start: entry args come from the data MMRs
                // (reads are monitored — an injected MMR fault activates
                // here).
                if self.mmr.peek(MMR_CTRL) & CTRL_START != 0 {
                    let n_args = self.cdfg.blocks[0].n_args;
                    let args: Vec<u64> =
                        (0..n_args).map(|i| self.mmr.read(MMR_DATA0 + i).unwrap_or(0)).collect();
                    let args_taint: Vec<u64> = if self.taint.is_some() {
                        let t: Vec<u64> =
                            (0..n_args).map(|i| self.mmr.taint_of(MMR_DATA0 + i)).collect();
                        if t.iter().any(|&x| x != 0) {
                            self.taint_hop("MMR", "FU");
                        }
                        t
                    } else {
                        Vec::new()
                    };
                    self.mmr.poke(MMR_CTRL, 0);
                    self.mmr.poke(MMR_STATUS, 0);
                    self.state = AccelState::Running;
                    self.enter_block(0, args, args_taint);
                }
            }
            AccelState::Running => {
                self.stats.compute_cycles += 1;
                self.step_block();
            }
            AccelState::Done | AccelState::Error(_) => {}
        }
        self.state
    }

    fn finish_with(&mut self, st: AccelState) {
        self.state = st;
        self.exec = None;
        let status = match st {
            AccelState::Done => STATUS_DONE,
            AccelState::Error(_) => STATUS_DONE | STATUS_ERROR,
            _ => 0,
        };
        self.mmr.poke(MMR_STATUS, status);
        self.irq = true;
    }

    fn step_block(&mut self) {
        let now = self.cycle;
        let mut ex = self.exec.take().expect("running without exec state");

        // 1. retire completions.
        let mut i = 0;
        while i < ex.pending.len() {
            if ex.pending[i].0 <= now {
                let (_, ni) = ex.pending.swap_remove(i);
                ex.done[ni as usize] = true;
                ex.remaining -= 1;
            } else {
                i += 1;
            }
        }

        // 2. block complete → terminator.
        if ex.remaining == 0 {
            let track = self.taint.is_some();
            let term = self.cdfg.blocks[ex.block].term.clone();
            let taint_of = |ex: &BlockExec, a: u32, ctl: bool| -> u64 {
                ex.vals_taint.get(a as usize).copied().unwrap_or(0) | if ctl { !0 } else { 0 }
            };
            match term {
                Terminator::Finish => {
                    self.finish_with(AccelState::Done);
                    return;
                }
                Terminator::Jump { target, args } => {
                    let vals: Vec<u64> = args.iter().map(|&a| ex.vals[a as usize]).collect();
                    let ctl = self.taint.as_deref().is_some_and(|t| t.ctl);
                    let vt: Vec<u64> = if track {
                        args.iter().map(|&a| taint_of(&ex, a, ctl)).collect()
                    } else {
                        Vec::new()
                    };
                    self.enter_block(target, vals, vt);
                    return;
                }
                Terminator::Branch { cond, then_, else_ } => {
                    // A tainted condition poisons control flow for good:
                    // the very choice of path is now fault-dependent.
                    if ex.vals_taint.get(cond as usize).copied().unwrap_or(0) != 0 {
                        if let Some(t) = self.taint.as_deref_mut() {
                            t.ctl = true;
                        }
                    }
                    let (t, args) = if ex.vals[cond as usize] != 0 { then_ } else { else_ };
                    let vals: Vec<u64> = args.iter().map(|&a| ex.vals[a as usize]).collect();
                    let ctl = self.taint.as_deref().is_some_and(|t| t.ctl);
                    let vt: Vec<u64> = if track {
                        args.iter().map(|&a| taint_of(&ex, a, ctl)).collect()
                    } else {
                        Vec::new()
                    };
                    self.enter_block(t, vals, vt);
                    return;
                }
            }
        }

        // 3. issue ready nodes under FU constraints.
        let mut int_left = self.fu.int_alu;
        let mut fpa_left = self.fu.fp_add;
        let mut fpm_left = self.fu.fp_mul;
        let mut mem_used: Vec<(MemRef, usize)> = Vec::new();

        let block = ex.block;
        let n_nodes = self.cdfg.blocks[block].nodes.len();
        for ni in 0..n_nodes {
            if ex.started[ni] {
                continue;
            }
            let node = self.cdfg.blocks[block].nodes[ni];
            // Operand readiness.
            let ready = [node.a, node.b, node.c].iter().all(|&o| o == NODE_NONE || ex.done[o as usize]);
            if !ready {
                continue;
            }
            // Per-memory ordering: loads wait for earlier unfinished
            // stores (RAW) and stores wait for earlier unfinished loads
            // (WAR); same-kind accesses proceed in parallel. Designs must
            // not issue two same-block stores to one address (WAW), which
            // none of the MachSuite kernels do.
            if let Some(m) = node.op.is_mem() {
                let blocked = self.cdfg.blocks[block].nodes[..ni].iter().enumerate().any(|(pi, p)| {
                    p.op.is_mem() == Some(m) && !ex.done[pi] && (p.op.is_store() != node.op.is_store())
                });
                if blocked {
                    continue;
                }
            }
            // FU availability.
            match node.op.fu_class() {
                FuClass::Free => {}
                FuClass::IntAlu => {
                    if int_left == 0 {
                        continue;
                    }
                    int_left -= 1;
                }
                FuClass::FpAdd => {
                    if fpa_left == 0 {
                        continue;
                    }
                    fpa_left -= 1;
                }
                FuClass::FpMul => {
                    if fpm_left == 0 {
                        continue;
                    }
                    fpm_left -= 1;
                }
                FuClass::MemPort(m) => {
                    let ports = self.mem_ref(m).ports;
                    let used = mem_used.iter_mut().find(|(mm, _)| *mm == m);
                    match used {
                        Some((_, u)) => {
                            if *u >= ports {
                                continue;
                            }
                            *u += 1;
                        }
                        None => mem_used.push((m, 1)),
                    }
                }
            }

            // Execute.
            ex.started[ni] = true;
            self.stats.nodes_executed += 1;
            let a = if node.a == NODE_NONE { 0 } else { ex.vals[node.a as usize] };
            let b = if node.b == NODE_NONE { 0 } else { ex.vals[node.b as usize] };
            let c = if node.c == NODE_NONE { 0 } else { ex.vals[node.c as usize] };
            let track = self.taint.is_some();
            let tof = |t: &[u64], n: u32| if n == NODE_NONE { 0 } else { t[n as usize] };
            let (ta, tb, tc) = if track {
                (tof(&ex.vals_taint, node.a), tof(&ex.vals_taint, node.b), tof(&ex.vals_taint, node.c))
            } else {
                (0, 0, 0)
            };
            let mut lat = node.op.latency();
            let val = match node.op {
                NodeOp::Const(v) => v,
                NodeOp::Arg(k) => ex.args[k],
                NodeOp::Alu(op) => op.eval(a, b, Isa::RiscV).expect("riscv alu never traps"),
                NodeOp::FAdd => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
                NodeOp::FSub => (f64::from_bits(a) - f64::from_bits(b)).to_bits(),
                NodeOp::FMul => (f64::from_bits(a) * f64::from_bits(b)).to_bits(),
                NodeOp::FDiv => (f64::from_bits(a) / f64::from_bits(b)).to_bits(),
                NodeOp::FCmpLt => (f64::from_bits(a) < f64::from_bits(b)) as u64,
                NodeOp::ItoF => ((a as i64) as f64).to_bits(),
                NodeOp::FtoI => (f64::from_bits(a) as i64) as u64,
                NodeOp::Select => {
                    if c != 0 {
                        a
                    } else {
                        b
                    }
                }
                NodeOp::Load { mem, w } => {
                    self.stats.mem_reads += 1;
                    lat += self.mem_ref(mem).kind.read_latency();
                    match self.mem(mem).read(a, w as usize) {
                        Some(v) => {
                            if track {
                                let mname = self.mem_ref(mem).kind.name();
                                let t = self.mem_ref(mem).taint_read(a, w as usize)
                                    | if ta != 0 { !0 } else { 0 };
                                if t != 0 {
                                    self.taint_hop(mname, "FU");
                                }
                                ex.vals_taint[ni] = t;
                            }
                            v
                        }
                        None => {
                            let (is_spm, idx) = match mem {
                                MemRef::Spm(i) => (true, i),
                                MemRef::RegBank(i) => (false, i),
                            };
                            self.finish_with(AccelState::Error(AccelError::OutOfBounds {
                                mem_is_spm: is_spm,
                                mem_idx: idx,
                                addr: a,
                            }));
                            return;
                        }
                    }
                }
                NodeOp::Store { mem, w } => {
                    self.stats.mem_writes += 1;
                    match self.mem(mem).write(a, w as usize, b) {
                        Some(()) => {
                            if track {
                                let ctl = self.taint.as_deref().is_some_and(|t| t.ctl);
                                let t = tb | if ta != 0 || ctl { !0 } else { 0 };
                                let mname = self.mem_ref(mem).kind.name();
                                self.mem(mem).taint_write(a, w as usize, t);
                                if t != 0 {
                                    self.taint_hop("FU", mname);
                                }
                            }
                            0
                        }
                        None => {
                            let (is_spm, idx) = match mem {
                                MemRef::Spm(i) => (true, i),
                                MemRef::RegBank(i) => (false, i),
                            };
                            self.finish_with(AccelState::Error(AccelError::OutOfBounds {
                                mem_is_spm: is_spm,
                                mem_idx: idx,
                                addr: a,
                            }));
                            return;
                        }
                    }
                }
            };
            if track {
                ex.vals_taint[ni] = match node.op {
                    NodeOp::Const(_) => 0,
                    NodeOp::Arg(k) => ex.args_taint.get(k).copied().unwrap_or(0),
                    NodeOp::Alu(op) => alu_taint(taint_kind(op), ta, tb, b),
                    // FP and conversions mix bits non-locally: any tainted
                    // input poisons the whole result.
                    NodeOp::FAdd
                    | NodeOp::FSub
                    | NodeOp::FMul
                    | NodeOp::FDiv
                    | NodeOp::FCmpLt
                    | NodeOp::ItoF
                    | NodeOp::FtoI => {
                        if (ta | tb) != 0 {
                            !0
                        } else {
                            0
                        }
                    }
                    // A tainted select condition could pick either input.
                    NodeOp::Select => {
                        if tc != 0 {
                            !0
                        } else if c != 0 {
                            ta
                        } else {
                            tb
                        }
                    }
                    NodeOp::Load { .. } => ex.vals_taint[ni], // set above
                    NodeOp::Store { .. } => 0,
                };
            }
            ex.vals[ni] = val;
            if lat == 0 {
                ex.done[ni] = true;
                ex.remaining -= 1;
            } else {
                ex.pending.push((now + lat as u64, ni as u32));
            }
        }

        self.exec = Some(ex);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::air::CdfgBuilder;
    use crate::sram::SramKind;
    use marvel_isa::AluOp;

    /// Sum the first `n` u64 words of SPM0 into SPM1[0].
    fn sum_accel(fu: FuConfig) -> Accelerator {
        let mut g = CdfgBuilder::new();
        let entry = g.block(1); // arg0 = n
        let body = g.block(3); // i, n, acc
        let done = g.block(1); // acc
        g.select(entry);
        let n = g.arg(0);
        let z = g.konst(0);
        g.jump(body, &[z, n, z]);
        g.select(body);
        let i = g.arg(0);
        let n = g.arg(1);
        let acc = g.arg(2);
        let eight = g.konst(8);
        let addr = g.alu(AluOp::Mul, i, eight);
        let v = g.load(MemRef::Spm(0), 8, addr);
        let acc2 = g.alu(AluOp::Add, acc, v);
        let one = g.konst(1);
        let i2 = g.alu(AluOp::Add, i, one);
        let more = g.alu(AluOp::Sltu, i2, n);
        g.branch(more, body, &[i2, n, acc2], done, &[acc2]);
        g.select(done);
        let acc = g.arg(0);
        let z = g.konst(0);
        g.store(MemRef::Spm(1), 8, z, acc);
        g.finish();

        let spm0 = Sram::new("IN", SramKind::Spm, 256, 2);
        let spm1 = Sram::new("OUT", SramKind::Spm, 8, 1);
        Accelerator::new("sum", g.build().unwrap(), fu, vec![spm0, spm1], vec![], 1)
    }

    fn run(a: &mut Accelerator, max: u64) -> AccelState {
        for _ in 0..max {
            match a.tick() {
                AccelState::Running | AccelState::Idle => {}
                s => return s,
            }
        }
        panic!("accelerator did not finish");
    }

    #[test]
    fn computes_sum() {
        let mut a = sum_accel(FuConfig::default());
        for i in 0..16u64 {
            a.spms[0].write(i * 8, 8, i + 1).unwrap();
        }
        a.start(&[16]);
        let st = run(&mut a, 10_000);
        assert_eq!(st, AccelState::Done);
        assert_eq!(a.spms[1].read(0, 8).unwrap(), 136); // 1+..+16
        assert!(a.stats.compute_cycles > 16);
        assert!(a.irq);
    }

    /// A block with 16 independent FP multiplies: FU-bound, not
    /// latency-bound.
    fn parallel_accel(fu: FuConfig) -> Accelerator {
        let mut g = CdfgBuilder::new();
        let b = g.block(0);
        g.select(b);
        let mut prods = Vec::new();
        for i in 0..16u64 {
            let addr = g.konst(i * 8);
            let v = g.load(MemRef::Spm(0), 8, addr);
            let k = g.fconst(1.5);
            prods.push(g.fmul(v, k));
        }
        for (i, p) in prods.into_iter().enumerate() {
            let addr = g.konst(i as u64 * 8);
            g.store(MemRef::Spm(1), 8, addr, p);
        }
        g.finish();
        let spm0 = Sram::new("IN", SramKind::Spm, 128, 4);
        let spm1 = Sram::new("OUT", SramKind::Spm, 128, 4);
        Accelerator::new("par", g.build().unwrap(), fu, vec![spm0, spm1], vec![], 0)
    }

    #[test]
    fn fewer_fus_run_slower() {
        // A serial loop is latency-bound (FU count irrelevant); a parallel
        // block is FU-bound. Check both properties.
        let mut fast = parallel_accel(FuConfig::uniform(16));
        let mut slow = parallel_accel(FuConfig::uniform(1));
        for a in [&mut fast, &mut slow] {
            for i in 0..16u64 {
                a.spms[0].write(i * 8, 8, 1.0f64.to_bits()).unwrap();
            }
            a.start(&[]);
            run(a, 100_000);
        }
        assert!(
            slow.stats.compute_cycles > fast.stats.compute_cycles,
            "slow {} vs fast {}",
            slow.stats.compute_cycles,
            fast.stats.compute_cycles
        );
        assert_eq!(slow.spms[1].read(0, 8), Some(1.5f64.to_bits()));

        let mut s1 = sum_accel(FuConfig::uniform(8));
        let mut s2 = sum_accel(FuConfig::uniform(2));
        for a in [&mut s1, &mut s2] {
            for i in 0..16u64 {
                a.spms[0].write(i * 8, 8, 1).unwrap();
            }
            a.start(&[16]);
            run(a, 100_000);
        }
        // Serial loop: nearly identical runtimes.
        let (c1, c2) = (s1.stats.compute_cycles as i64, s2.stats.compute_cycles as i64);
        assert!((c1 - c2).abs() <= c1 / 4, "serial loop should be latency-bound: {c1} vs {c2}");
    }

    #[test]
    fn out_of_bounds_is_error() {
        let mut a = sum_accel(FuConfig::default());
        a.start(&[64]); // 64*8 = 512 > 256-byte SPM
        let st = run(&mut a, 100_000);
        assert!(matches!(st, AccelState::Error(_)));
        assert_eq!(a.mmr.peek(crate::mmr::MMR_STATUS) & STATUS_ERROR, STATUS_ERROR);
    }

    #[test]
    fn spm_fault_changes_result() {
        let mut a = sum_accel(FuConfig::default());
        for i in 0..8u64 {
            a.spms[0].write(i * 8, 8, 2).unwrap();
        }
        a.spms[0].flip_bit(0); // word 0 bit 0: 2 -> 3
        a.start(&[8]);
        run(&mut a, 10_000);
        assert_eq!(a.spms[1].read(0, 8).unwrap(), 17);
        assert_eq!(a.spms[0].fate(), Some(crate::sram::SramFate::Read));
    }

    #[test]
    fn restart_after_reset() {
        let mut a = sum_accel(FuConfig::default());
        for i in 0..4u64 {
            a.spms[0].write(i * 8, 8, 5).unwrap();
        }
        a.start(&[4]);
        run(&mut a, 10_000);
        let c1 = a.stats.compute_cycles;
        a.reset();
        a.start(&[4]);
        let st = run(&mut a, 10_000);
        assert_eq!(st, AccelState::Done);
        assert_eq!(a.stats.compute_cycles, c1, "deterministic re-execution");
    }

    #[test]
    fn area_grows_with_fus_and_srams() {
        let small = sum_accel(FuConfig::uniform(1));
        let big = sum_accel(FuConfig::uniform(16));
        assert!(big.area() > small.area());
    }
}
