//! On-chip SRAM arrays: scratchpad memories (SPMs) and register banks.
//!
//! These are the paper's DSA injection targets (Table IV). Register banks
//! behave like SPMs but with a delta delay between write and read
//! availability, modelled as one extra cycle of read latency.

/// Fate of the armed (injected) bit — mirrors the CPU-side contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SramFate {
    #[default]
    Pending,
    Read,
    Overwritten,
}

/// Kind of on-chip memory (affects latency and the Table IV "Memory Type"
/// column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SramKind {
    Spm,
    RegBank,
}

impl SramKind {
    pub fn name(self) -> &'static str {
        match self {
            SramKind::Spm => "SPM",
            SramKind::RegBank => "RegBank",
        }
    }

    /// Read latency in cycles (RegBanks pay the delta delay).
    pub fn read_latency(self) -> u32 {
        match self {
            SramKind::Spm => 1,
            SramKind::RegBank => 2,
        }
    }
}

/// A named, fault-injectable on-chip memory.
#[derive(Debug, Clone)]
pub struct Sram {
    pub name: String,
    pub kind: SramKind,
    bytes: Vec<u8>,
    stuck: Vec<(u64, bool)>,
    armed: Option<(usize, SramFate)>,
    /// Parallel access ports (per-cycle access limit).
    pub ports: usize,
    /// Access tallies (scalar reads/writes plus DMA fills/drains).
    pub reads: u64,
    pub writes: u64,
    /// marvel-taint per-byte shadow (empty = tracking off). Taint
    /// accessors never touch `armed`/`reads`/`writes`, so enabling the
    /// plane cannot perturb fault fates or timing.
    shadow: Vec<u8>,
    /// Dirty byte watermark `[dirty_lo, dirty_hi)` covering every data
    /// mutation since the last [`reset_from`](Self::reset_from). Always
    /// maintained (two compares per write); empty when `lo > hi`.
    dirty_lo: usize,
    dirty_hi: usize,
}

impl Sram {
    pub fn new(name: &str, kind: SramKind, size: usize, ports: usize) -> Self {
        Sram {
            name: name.to_string(),
            kind,
            bytes: vec![0; size],
            stuck: Vec::new(),
            armed: None,
            ports,
            reads: 0,
            writes: 0,
            shadow: Vec::new(),
            dirty_lo: usize::MAX,
            dirty_hi: 0,
        }
    }

    #[inline]
    fn mark_range(&mut self, off: usize, n: usize) {
        self.dirty_lo = self.dirty_lo.min(off);
        self.dirty_hi = self.dirty_hi.max(off + n);
    }

    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Read `n ≤ 8` bytes at `off`.
    ///
    /// Returns `None` when the access runs out of bounds (the accelerator
    /// raises an error — a Crash in fault-effect terms).
    pub fn read(&mut self, off: u64, n: usize) -> Option<u64> {
        let off = off as usize;
        if off + n > self.bytes.len() {
            return None;
        }
        self.reads += 1;
        if let Some((b, fate)) = &mut self.armed {
            if *fate == SramFate::Pending && *b >= off && *b < off + n {
                *fate = SramFate::Read;
            }
        }
        let mut out = [0u8; 8];
        out[..n].copy_from_slice(&self.bytes[off..off + n]);
        Some(u64::from_le_bytes(out))
    }

    /// The observable side effects of a [`read`](Self::read) without the
    /// data: access tally and armed-bit fate. The replay engine's
    /// memoized loads use this — the value comes from the golden trace,
    /// but early-termination polls and forensics still see the access.
    /// Returns `false` when the access would be out of bounds.
    pub fn touch_read(&mut self, off: u64, n: usize) -> bool {
        let off = off as usize;
        if off + n > self.bytes.len() {
            return false;
        }
        self.reads += 1;
        if let Some((b, fate)) = &mut self.armed {
            if *fate == SramFate::Pending && *b >= off && *b < off + n {
                *fate = SramFate::Read;
            }
        }
        true
    }

    /// Write `n ≤ 8` bytes at `off`.
    pub fn write(&mut self, off: u64, n: usize, val: u64) -> Option<()> {
        let off = off as usize;
        if off + n > self.bytes.len() {
            return None;
        }
        self.writes += 1;
        if let Some((b, fate)) = &mut self.armed {
            if *fate == SramFate::Pending && *b >= off && *b < off + n {
                *fate = SramFate::Overwritten;
            }
        }
        self.mark_range(off, n);
        self.bytes[off..off + n].copy_from_slice(&val.to_le_bytes()[..n]);
        self.apply_stuck_range(off, n);
        Some(())
    }

    /// Bulk copy in (DMA fill).
    pub fn fill(&mut self, off: usize, data: &[u8]) -> Option<()> {
        if off + data.len() > self.bytes.len() {
            return None;
        }
        self.writes += 1;
        if let Some((b, fate)) = &mut self.armed {
            if *fate == SramFate::Pending && *b >= off && *b < off + data.len() {
                *fate = SramFate::Overwritten;
            }
        }
        self.mark_range(off, data.len());
        self.bytes[off..off + data.len()].copy_from_slice(data);
        self.apply_stuck_range(off, data.len());
        Some(())
    }

    /// Bulk copy out (DMA drain). Marks the range as read.
    pub fn drain(&mut self, off: usize, len: usize) -> Option<Vec<u8>> {
        if off + len > self.bytes.len() {
            return None;
        }
        self.reads += 1;
        if let Some((b, fate)) = &mut self.armed {
            if *fate == SramFate::Pending && *b >= off && *b < off + len {
                *fate = SramFate::Read;
            }
        }
        Some(self.bytes[off..off + len].to_vec())
    }

    /// Raw contents (tests/verification).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    // ---- fault injection ----

    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8
    }

    pub fn flip_bit(&mut self, bit: u64) -> SramFate {
        let byte = (bit / 8) as usize;
        self.mark_range(byte, 1);
        self.bytes[byte] ^= 1 << (bit % 8);
        self.armed = Some((byte, SramFate::Pending));
        if let Some(s) = self.shadow.get_mut(byte) {
            *s |= 1 << (bit % 8);
        }
        SramFate::Pending
    }

    pub fn set_stuck(&mut self, bit: u64, value: bool) {
        self.stuck.push((bit, value));
        let byte = (bit / 8) as usize;
        self.mark_range(byte, 1);
        let mask = 1u8 << (bit % 8);
        if value {
            self.bytes[byte] |= mask;
        } else {
            self.bytes[byte] &= !mask;
        }
        self.armed = Some((byte, SramFate::Pending));
        if let Some(s) = self.shadow.get_mut(byte) {
            *s |= mask;
        }
    }

    pub fn fate(&self) -> Option<SramFate> {
        self.armed.map(|(_, f)| f)
    }

    // ---- zero-copy campaign reset ----

    /// Restore this SRAM to `pristine` by copying only the watermarked
    /// dirty byte range. Returns state bytes copied. Per-run fault state
    /// (stuck list, armed fate, taint shadow) is restored wholesale.
    pub fn reset_from(&mut self, pristine: &Sram) -> u64 {
        debug_assert_eq!(self.bytes.len(), pristine.bytes.len());
        let mut bytes = 0u64;
        if self.dirty_lo < self.dirty_hi {
            let lo = self.dirty_lo;
            let hi = self.dirty_hi.min(self.bytes.len());
            self.bytes[lo..hi].copy_from_slice(&pristine.bytes[lo..hi]);
            bytes += (hi - lo) as u64;
        }
        self.dirty_lo = usize::MAX;
        self.dirty_hi = 0;
        self.stuck.clone_from(&pristine.stuck);
        self.armed = pristine.armed;
        self.reads = pristine.reads;
        self.writes = pristine.writes;
        if pristine.shadow.is_empty() {
            self.shadow.clear();
        } else {
            self.shadow.clone_from(&pristine.shadow);
        }
        bytes + 24 // counters + armed state
    }

    /// Functional-state equality for the convergence exit: only the data
    /// bytes steer future behaviour. Access tallies, armed fate, the stuck
    /// list and the taint shadow are observational (the shadow is checked
    /// separately via [`taint_quiescent`](Self::taint_quiescent)).
    pub fn state_eq(&self, pristine: &Sram) -> bool {
        self.bytes == pristine.bytes
    }

    /// True when no shadow byte is set (or the plane is off).
    pub fn taint_quiescent(&self) -> bool {
        self.shadow.iter().all(|&b| b == 0)
    }

    // ---- marvel-taint shadow plane ----

    /// Allocate the per-byte shadow. Call before fault arming; enabling
    /// after arming conservatively taints the whole armed byte.
    pub fn enable_taint(&mut self) {
        if self.shadow.is_empty() {
            self.shadow = vec![0; self.bytes.len()];
        }
        if let Some((byte, _)) = self.armed {
            self.shadow[byte] = 0xFF;
        }
        for &(bit, _) in &self.stuck {
            self.shadow[(bit / 8) as usize] |= 1 << (bit % 8);
        }
    }

    #[inline]
    pub fn taint_on(&self) -> bool {
        !self.shadow.is_empty()
    }

    /// Shadow counterpart of [`read`](Self::read) (LE mask; 0 when off).
    pub fn taint_read(&self, off: u64, n: usize) -> u64 {
        let off = off as usize;
        if self.shadow.is_empty() || off + n > self.shadow.len() {
            return 0;
        }
        let mut out = [0u8; 8];
        out[..n].copy_from_slice(&self.shadow[off..off + n]);
        u64::from_le_bytes(out)
    }

    /// Shadow counterpart of [`write`](Self::write): replaces the range's
    /// taint (clean data washes taint out), re-asserting stuck-at bits.
    pub fn taint_write(&mut self, off: u64, n: usize, mask: u64) {
        let off = off as usize;
        if self.shadow.is_empty() || off + n > self.shadow.len() {
            return;
        }
        self.shadow[off..off + n].copy_from_slice(&mask.to_le_bytes()[..n]);
        self.reapply_stuck_taint(off, n);
    }

    /// Shadow counterpart of [`fill`](Self::fill) (DMA in).
    pub fn taint_fill(&mut self, off: usize, shadow: &[u8]) {
        if self.shadow.is_empty() || off + shadow.len() > self.shadow.len() {
            return;
        }
        self.shadow[off..off + shadow.len()].copy_from_slice(shadow);
        self.reapply_stuck_taint(off, shadow.len());
    }

    /// Shadow counterpart of [`drain`](Self::drain) (DMA out).
    pub fn taint_drain(&self, off: usize, len: usize) -> Option<Vec<u8>> {
        if self.shadow.is_empty() || off + len > self.shadow.len() {
            return None;
        }
        Some(self.shadow[off..off + len].to_vec())
    }

    /// Any tainted byte in `[off, off+len)`?
    pub fn taint_any(&self, off: usize, len: usize) -> bool {
        if self.shadow.is_empty() || off + len > self.shadow.len() {
            return false;
        }
        self.shadow[off..off + len].iter().any(|&b| b != 0)
    }

    fn reapply_stuck_taint(&mut self, off: usize, n: usize) {
        for i in 0..self.stuck.len() {
            let (bit, _) = self.stuck[i];
            let byte = (bit / 8) as usize;
            if byte >= off && byte < off + n {
                self.shadow[byte] |= 1 << (bit % 8);
            }
        }
    }

    fn apply_stuck_range(&mut self, off: usize, n: usize) {
        for &(bit, value) in &self.stuck {
            let byte = (bit / 8) as usize;
            if byte >= off && byte < off + n {
                let mask = 1u8 << (bit % 8);
                if value {
                    self.bytes[byte] |= mask;
                } else {
                    self.bytes[byte] &= !mask;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut s = Sram::new("t", SramKind::Spm, 64, 2);
        s.write(8, 8, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(s.read(8, 8).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(s.read(8, 2).unwrap(), 0x7788);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut s = Sram::new("t", SramKind::Spm, 16, 1);
        assert!(s.read(12, 8).is_none());
        assert!(s.write(16, 1, 0).is_none());
        assert!(s.fill(10, &[0; 8]).is_none());
    }

    #[test]
    fn flip_and_fate_tracking() {
        let mut s = Sram::new("t", SramKind::Spm, 16, 1);
        s.flip_bit(9); // byte 1, bit 1
        assert_eq!(s.bytes()[1], 2);
        assert_eq!(s.fate(), Some(SramFate::Pending));
        s.read(0, 8);
        assert_eq!(s.fate(), Some(SramFate::Read));
    }

    #[test]
    fn overwrite_masks_fault() {
        let mut s = Sram::new("t", SramKind::Spm, 16, 1);
        s.flip_bit(0);
        s.write(0, 1, 0xAA);
        assert_eq!(s.fate(), Some(SramFate::Overwritten));
    }

    #[test]
    fn dma_fill_drain() {
        let mut s = Sram::new("t", SramKind::RegBank, 16, 1);
        s.fill(4, &[1, 2, 3, 4]).unwrap();
        assert_eq!(s.drain(4, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(SramKind::RegBank.read_latency(), 2);
    }

    #[test]
    fn taint_shadow_follows_flip_write_and_dma() {
        let mut s = Sram::new("t", SramKind::Spm, 32, 1);
        assert_eq!(s.taint_read(0, 8), 0); // off: cheap no-op
        s.enable_taint();
        s.flip_bit(8 * 4 + 2); // byte 4, bit 2
        assert_eq!(s.taint_read(4, 1), 0b100);
        assert!(s.taint_any(0, 8));
        // Clean overwrite washes the taint out.
        s.taint_write(4, 1, 0);
        assert!(!s.taint_any(0, 8));
        // DMA shadow roundtrip.
        s.taint_fill(16, &[0xFF, 0, 0xFF, 0]);
        assert_eq!(s.taint_drain(16, 4).unwrap(), vec![0xFF, 0, 0xFF, 0]);
        // Stuck-at taint re-asserts across writes.
        s.set_stuck(8 * 2 + 1, true);
        s.taint_write(2, 1, 0);
        assert_eq!(s.taint_read(2, 1), 0b10);
    }

    #[test]
    fn dirty_reset_restores_watermarked_range() {
        let mut pristine = Sram::new("t", SramKind::Spm, 64, 2);
        pristine.fill(0, &[5u8; 64]).unwrap();
        let mut s = pristine.clone();
        let _ = s.reset_from(&pristine); // flush the construction watermark
        s.write(8, 8, 0xDEAD_BEEF).unwrap();
        s.flip_bit(3);
        s.enable_taint();
        let bytes = s.reset_from(&pristine);
        // Watermark spans byte 0 (flip) through 16 (write end).
        assert!((16..64).contains(&bytes), "bytes {bytes}");
        assert_eq!(s.bytes(), pristine.bytes());
        assert_eq!(s.fate(), pristine.fate());
        assert!(!s.taint_on());
        assert_eq!((s.reads, s.writes), (pristine.reads, pristine.writes));
    }

    #[test]
    fn stuck_bit_reasserts() {
        let mut s = Sram::new("t", SramKind::Spm, 8, 1);
        s.set_stuck(3, true);
        s.write(0, 1, 0);
        assert_eq!(s.read(0, 1).unwrap() & 8, 8);
        s.fill(0, &[0]).unwrap();
        assert_eq!(s.read(0, 1).unwrap() & 8, 8);
    }
}
