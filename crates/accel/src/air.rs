//! AIR — the accelerator intermediate representation.
//!
//! The gem5-SALAM analogue: accelerators are control/data-flow graphs
//! (CDFGs) whose blocks execute with instruction-level parallelism bounded
//! by functional-unit constraints, exactly the model SALAM derives from
//! LLVM IR. Blocks take arguments (phi-style), so loops are block
//! re-entries with updated arguments.

use marvel_isa::AluOp;

pub type NodeId = u32;
pub const NODE_NONE: NodeId = u32::MAX;

/// Reference to one of the accelerator's on-chip memories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemRef {
    Spm(usize),
    RegBank(usize),
}

/// Dataflow node operations. Floating-point values travel as `f64` bit
/// patterns in the 64-bit dataflow values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeOp {
    Const(u64),
    /// Block argument `i`.
    Arg(usize),
    /// Integer ALU op (64-bit, RISC-V division semantics, no traps).
    Alu(AluOp),
    FAdd,
    FSub,
    FMul,
    FDiv,
    /// `(a < b) as u64` on f64 values.
    FCmpLt,
    /// Signed integer → f64.
    ItoF,
    /// f64 → signed integer (truncating).
    FtoI,
    /// `c != 0 ? a : b`.
    Select,
    /// Load `w` bytes from `mem[a]` (local byte address).
    Load {
        mem: MemRef,
        w: u8,
    },
    /// Store `w` bytes of `b` to `mem[a]`.
    Store {
        mem: MemRef,
        w: u8,
    },
}

impl NodeOp {
    /// Execution latency in cycles (memory latency added by the engine).
    pub fn latency(self) -> u32 {
        match self {
            NodeOp::Const(_) | NodeOp::Arg(_) => 0,
            NodeOp::Alu(op) => op.latency(),
            NodeOp::FAdd | NodeOp::FSub => 4,
            NodeOp::FMul => 5,
            NodeOp::FDiv => 16,
            NodeOp::FCmpLt => 2,
            NodeOp::ItoF | NodeOp::FtoI => 2,
            NodeOp::Select => 1,
            NodeOp::Load { .. } => 0,
            NodeOp::Store { .. } => 1,
        }
    }

    /// Functional-unit class consumed when this node issues.
    pub fn fu_class(self) -> FuClass {
        match self {
            NodeOp::Const(_) | NodeOp::Arg(_) => FuClass::Free,
            NodeOp::Alu(_) | NodeOp::Select => FuClass::IntAlu,
            NodeOp::FAdd | NodeOp::FSub | NodeOp::FCmpLt => FuClass::FpAdd,
            NodeOp::FMul | NodeOp::FDiv => FuClass::FpMul,
            NodeOp::ItoF | NodeOp::FtoI => FuClass::IntAlu,
            NodeOp::Load { mem, .. } | NodeOp::Store { mem, .. } => FuClass::MemPort(mem),
        }
    }

    pub fn is_store(self) -> bool {
        matches!(self, NodeOp::Store { .. })
    }

    pub fn is_mem(self) -> Option<MemRef> {
        match self {
            NodeOp::Load { mem, .. } | NodeOp::Store { mem, .. } => Some(mem),
            _ => None,
        }
    }
}

/// FU classes used by the per-cycle scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuClass {
    Free,
    IntAlu,
    FpAdd,
    FpMul,
    MemPort(MemRef),
}

/// One dataflow node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node {
    pub op: NodeOp,
    pub a: NodeId,
    pub b: NodeId,
    pub c: NodeId,
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump with block arguments.
    Jump { target: usize, args: Vec<NodeId> },
    /// Two-way branch on an integer condition node.
    Branch { cond: NodeId, then_: (usize, Vec<NodeId>), else_: (usize, Vec<NodeId>) },
    /// Computation finished.
    Finish,
}

/// A block: dataflow nodes + terminator. `n_args` block arguments arrive
/// from the predecessor.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub n_args: usize,
    pub nodes: Vec<Node>,
    pub term: Terminator,
}

/// The whole accelerator CDFG. Block 0 is the entry; its arguments come
/// from the MMR data registers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cdfg {
    pub blocks: Vec<Block>,
}

impl Cdfg {
    /// Structural validation: operand indices in range, terminator
    /// arg counts match target `n_args`, arg nodes within `n_args`.
    pub fn validate(&self) -> Result<(), String> {
        for (bi, b) in self.blocks.iter().enumerate() {
            for (ni, n) in b.nodes.iter().enumerate() {
                for (slot, &o) in [n.a, n.b, n.c].iter().enumerate() {
                    if o != NODE_NONE && o as usize >= ni {
                        return Err(format!("block {bi} node {ni} operand {slot} refers forward"));
                    }
                }
                if let NodeOp::Arg(i) = n.op {
                    if i >= b.n_args {
                        return Err(format!("block {bi} node {ni}: arg {i} out of range"));
                    }
                }
            }
            let check = |t: usize, args: &Vec<NodeId>| -> Result<(), String> {
                let tb = self.blocks.get(t).ok_or(format!("block {bi}: bad target {t}"))?;
                if tb.n_args != args.len() {
                    return Err(format!(
                        "block {bi}: target {t} expects {} args, got {}",
                        tb.n_args,
                        args.len()
                    ));
                }
                for &a in args {
                    if a as usize >= b.nodes.len() {
                        return Err(format!("block {bi}: terminator arg {a} out of range"));
                    }
                }
                Ok(())
            };
            match &b.term {
                Terminator::Jump { target, args } => check(*target, args)?,
                Terminator::Branch { cond, then_, else_ } => {
                    if *cond as usize >= b.nodes.len() {
                        return Err(format!("block {bi}: branch cond out of range"));
                    }
                    check(then_.0, &then_.1)?;
                    check(else_.0, &else_.1)?;
                }
                Terminator::Finish => {}
            }
        }
        Ok(())
    }
}

/// Builder for CDFGs.
///
/// ```
/// use marvel_accel::air::{CdfgBuilder, MemRef};
/// use marvel_isa::AluOp;
///
/// let mut g = CdfgBuilder::new();
/// let entry = g.block(1); // one argument: element count
/// g.select(entry);
/// let n = g.arg(0);
/// let zero = g.konst(0);
/// let done = g.alu(AluOp::Sltu, zero, n);
/// g.finish();
/// let cdfg = g.build().unwrap();
/// assert_eq!(cdfg.blocks.len(), 1);
/// # let _ = done;
/// ```
#[derive(Debug, Default)]
pub struct CdfgBuilder {
    blocks: Vec<Block>,
    cur: usize,
}

impl CdfgBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a block with `n_args` arguments; returns its index.
    pub fn block(&mut self, n_args: usize) -> usize {
        self.blocks.push(Block { n_args, nodes: Vec::new(), term: Terminator::Finish });
        self.blocks.len() - 1
    }

    /// Select the block subsequent node insertions go into.
    pub fn select(&mut self, b: usize) {
        self.cur = b;
    }

    fn push(&mut self, op: NodeOp, a: NodeId, b: NodeId, c: NodeId) -> NodeId {
        let blk = &mut self.blocks[self.cur];
        blk.nodes.push(Node { op, a, b, c });
        (blk.nodes.len() - 1) as NodeId
    }

    pub fn konst(&mut self, v: u64) -> NodeId {
        self.push(NodeOp::Const(v), NODE_NONE, NODE_NONE, NODE_NONE)
    }

    /// f64 constant (stored as bits).
    pub fn fconst(&mut self, v: f64) -> NodeId {
        self.konst(v.to_bits())
    }

    pub fn arg(&mut self, i: usize) -> NodeId {
        self.push(NodeOp::Arg(i), NODE_NONE, NODE_NONE, NODE_NONE)
    }

    pub fn alu(&mut self, op: AluOp, a: NodeId, b: NodeId) -> NodeId {
        self.push(NodeOp::Alu(op), a, b, NODE_NONE)
    }

    pub fn fadd(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(NodeOp::FAdd, a, b, NODE_NONE)
    }

    pub fn fsub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(NodeOp::FSub, a, b, NODE_NONE)
    }

    pub fn fmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(NodeOp::FMul, a, b, NODE_NONE)
    }

    pub fn fdiv(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(NodeOp::FDiv, a, b, NODE_NONE)
    }

    pub fn fcmp_lt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(NodeOp::FCmpLt, a, b, NODE_NONE)
    }

    pub fn itof(&mut self, a: NodeId) -> NodeId {
        self.push(NodeOp::ItoF, a, NODE_NONE, NODE_NONE)
    }

    pub fn ftoi(&mut self, a: NodeId) -> NodeId {
        self.push(NodeOp::FtoI, a, NODE_NONE, NODE_NONE)
    }

    pub fn select_val(&mut self, c: NodeId, a: NodeId, b: NodeId) -> NodeId {
        self.push(NodeOp::Select, a, b, c)
    }

    pub fn load(&mut self, mem: MemRef, w: u8, addr: NodeId) -> NodeId {
        self.push(NodeOp::Load { mem, w }, addr, NODE_NONE, NODE_NONE)
    }

    pub fn store(&mut self, mem: MemRef, w: u8, addr: NodeId, val: NodeId) -> NodeId {
        self.push(NodeOp::Store { mem, w }, addr, val, NODE_NONE)
    }

    pub fn jump(&mut self, target: usize, args: &[NodeId]) {
        self.blocks[self.cur].term = Terminator::Jump { target, args: args.to_vec() };
    }

    pub fn branch(
        &mut self,
        cond: NodeId,
        then_: usize,
        targs: &[NodeId],
        else_: usize,
        eargs: &[NodeId],
    ) {
        self.blocks[self.cur].term =
            Terminator::Branch { cond, then_: (then_, targs.to_vec()), else_: (else_, eargs.to_vec()) };
    }

    pub fn finish(&mut self) {
        self.blocks[self.cur].term = Terminator::Finish;
    }

    /// Validate and produce the CDFG.
    ///
    /// # Errors
    /// Returns the first structural problem found.
    pub fn build(self) -> Result<Cdfg, String> {
        let g = Cdfg { blocks: self.blocks };
        g.validate()?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_validate() {
        let mut g = CdfgBuilder::new();
        let b0 = g.block(1);
        let b1 = g.block(1);
        g.select(b0);
        let i = g.arg(0);
        let one = g.konst(1);
        let next = g.alu(AluOp::Add, i, one);
        g.jump(b1, &[next]);
        g.select(b1);
        let _ = g.arg(0);
        g.finish();
        assert!(g.build().is_ok());
    }

    #[test]
    fn forward_reference_rejected() {
        let g = Cdfg {
            blocks: vec![Block {
                n_args: 0,
                nodes: vec![Node { op: NodeOp::Alu(AluOp::Add), a: 1, b: NODE_NONE, c: NODE_NONE }],
                term: Terminator::Finish,
            }],
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn arg_count_mismatch_rejected() {
        let mut g = CdfgBuilder::new();
        let b0 = g.block(0);
        let b1 = g.block(2);
        g.select(b0);
        let k = g.konst(1);
        g.jump(b1, &[k]); // b1 wants 2 args
        g.select(b1);
        g.finish();
        assert!(g.build().is_err());
    }

    #[test]
    fn fu_classes() {
        assert_eq!(NodeOp::FMul.fu_class(), FuClass::FpMul);
        assert_eq!(NodeOp::Const(0).fu_class(), FuClass::Free);
        assert!(matches!(
            NodeOp::Load { mem: MemRef::Spm(0), w: 8 }.fu_class(),
            FuClass::MemPort(MemRef::Spm(0))
        ));
    }
}
