//! Memory-mapped registers: the accelerator's host interface (control,
//! status, data/argument registers) — itself a fault-injection target.

use crate::sram::SramFate;

/// Register indices.
pub const MMR_CTRL: usize = 0;
pub const MMR_STATUS: usize = 1;
/// First data/argument register.
pub const MMR_DATA0: usize = 2;

/// CTRL bit: start computation.
pub const CTRL_START: u64 = 1;
/// STATUS bit: computation finished.
pub const STATUS_DONE: u64 = 1;
/// STATUS bit: the datapath raised an error (e.g. out-of-bounds access).
pub const STATUS_ERROR: u64 = 2;

/// An MMR block of 64-bit registers.
#[derive(Debug, Clone)]
pub struct Mmr {
    regs: Vec<u64>,
    stuck: Vec<(u64, bool)>,
    armed: Option<(usize, SramFate)>,
    /// marvel-taint shadow masks, one per register (empty = off).
    shadow: Vec<u64>,
}

impl Mmr {
    pub fn new(n_data: usize) -> Self {
        Mmr { regs: vec![0; MMR_DATA0 + n_data], stuck: Vec::new(), armed: None, shadow: Vec::new() }
    }

    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Grow the register block so at least `n_data` data registers exist
    /// (hosted configurations need extra registers for DMA addresses).
    pub fn ensure_data_regs(&mut self, n_data: usize) {
        let need = MMR_DATA0 + n_data;
        if self.regs.len() < need {
            self.regs.resize(need, 0);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    pub fn read(&mut self, idx: usize) -> Option<u64> {
        if idx >= self.regs.len() {
            return None;
        }
        if let Some((r, fate)) = &mut self.armed {
            if *r == idx && *fate == SramFate::Pending {
                *fate = SramFate::Read;
            }
        }
        Some(self.regs[idx])
    }

    pub fn write(&mut self, idx: usize, v: u64) -> Option<()> {
        if idx >= self.regs.len() {
            return None;
        }
        if let Some((r, fate)) = &mut self.armed {
            if *r == idx && *fate == SramFate::Pending {
                *fate = SramFate::Overwritten;
            }
        }
        let mut v = v;
        for &(bit, value) in &self.stuck {
            if (bit / 64) as usize == idx {
                let m = 1u64 << (bit % 64);
                if value {
                    v |= m;
                } else {
                    v &= !m;
                }
            }
        }
        self.regs[idx] = v;
        Some(())
    }

    /// Internal (non-monitored) peek used by the engine.
    pub fn peek(&self, idx: usize) -> u64 {
        self.regs[idx]
    }

    /// Internal set used by the engine (status updates).
    pub fn poke(&mut self, idx: usize, v: u64) {
        self.regs[idx] = v;
    }

    pub fn bit_len(&self) -> u64 {
        self.regs.len() as u64 * 64
    }

    pub fn flip_bit(&mut self, bit: u64) -> SramFate {
        let idx = (bit / 64) as usize;
        self.regs[idx] ^= 1 << (bit % 64);
        self.armed = Some((idx, SramFate::Pending));
        if let Some(s) = self.shadow.get_mut(idx) {
            *s |= 1 << (bit % 64);
        }
        SramFate::Pending
    }

    pub fn set_stuck(&mut self, bit: u64, value: bool) {
        self.stuck.push((bit, value));
        let idx = (bit / 64) as usize;
        let m = 1u64 << (bit % 64);
        if value {
            self.regs[idx] |= m;
        } else {
            self.regs[idx] &= !m;
        }
        self.armed = Some((idx, SramFate::Pending));
        if let Some(s) = self.shadow.get_mut(idx) {
            *s |= m;
        }
    }

    pub fn fate(&self) -> Option<SramFate> {
        self.armed.map(|(_, f)| f)
    }

    /// Restore from `pristine` wholesale (the register block is tiny), for
    /// the zero-copy campaign reset. Returns state bytes copied.
    pub fn reset_from(&mut self, pristine: &Mmr) -> u64 {
        self.regs.clone_from(&pristine.regs);
        self.stuck.clone_from(&pristine.stuck);
        self.armed = pristine.armed;
        if pristine.shadow.is_empty() {
            self.shadow.clear();
        } else {
            self.shadow.clone_from(&pristine.shadow);
        }
        self.regs.len() as u64 * 8 + 16
    }

    /// Functional-state equality for the convergence exit: the register
    /// values steer future behaviour; armed fate, the stuck list and the
    /// taint shadow are observational.
    pub fn state_eq(&self, pristine: &Mmr) -> bool {
        self.regs == pristine.regs
    }

    /// True when no register carries taint (or the plane is off).
    pub fn taint_quiescent(&self) -> bool {
        self.shadow.iter().all(|&t| t == 0)
    }

    // ---- marvel-taint shadow plane ----

    /// Allocate the shadow plane (call before arming; enabling afterwards
    /// conservatively taints the whole armed register).
    pub fn enable_taint(&mut self) {
        if self.shadow.is_empty() {
            self.shadow = vec![0; self.regs.len()];
        }
        if let Some((idx, _)) = self.armed {
            self.shadow[idx] = !0;
        }
        for &(bit, _) in &self.stuck {
            self.shadow[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Taint mask of a register (0 when tracking is off).
    pub fn taint_of(&self, idx: usize) -> u64 {
        self.shadow.get(idx).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_and_bounds() {
        let mut m = Mmr::new(4);
        assert_eq!(m.len(), 6);
        m.write(MMR_DATA0, 0x1234).unwrap();
        assert_eq!(m.read(MMR_DATA0), Some(0x1234));
        assert!(m.write(6, 0).is_none());
        assert!(m.read(99).is_none());
    }

    #[test]
    fn flips_and_fate() {
        let mut m = Mmr::new(1);
        m.write(MMR_DATA0, 0).unwrap();
        m.flip_bit((MMR_DATA0 as u64) * 64 + 5);
        assert_eq!(m.peek(MMR_DATA0), 32);
        m.read(MMR_DATA0).unwrap();
        assert_eq!(m.fate(), Some(SramFate::Read));
    }

    #[test]
    fn stuck_applies_on_write() {
        let mut m = Mmr::new(1);
        m.set_stuck((MMR_DATA0 as u64) * 64, true);
        m.write(MMR_DATA0, 0).unwrap();
        assert_eq!(m.peek(MMR_DATA0) & 1, 1);
    }
}
