//! DMA engine: moves data between system RAM and accelerator SRAMs with a
//! modelled bandwidth, as in gem5-SALAM's cluster DMA devices.

use crate::air::MemRef;
use crate::engine::Accelerator;

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaDir {
    /// RAM → SRAM.
    ToSram,
    /// SRAM → RAM.
    ToRam,
}

/// One queued transfer. `ram_off` is a byte offset into the RAM slice the
/// engine is ticked with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaJob {
    pub dir: DmaDir,
    pub ram_off: usize,
    pub mem: MemRef,
    pub mem_off: usize,
    pub len: usize,
}

/// The DMA engine: processes jobs in order at `bandwidth` bytes/cycle.
#[derive(Debug, Clone)]
pub struct DmaEngine {
    jobs: std::collections::VecDeque<DmaJob>,
    progress: usize,
    /// Bytes moved per cycle.
    pub bandwidth: usize,
    pub bytes_moved: u64,
    /// Watermark `[lo, hi)` over RAM offsets this engine wrote (ToRam
    /// drains) since the last [`reset_from`](Self::reset_from) — lets the
    /// zero-copy campaign reset journal RAM writes that bypass the bus.
    ram_lo: usize,
    ram_hi: usize,
}

impl DmaEngine {
    pub fn new(bandwidth: usize) -> Self {
        assert!(bandwidth > 0);
        DmaEngine {
            jobs: Default::default(),
            progress: 0,
            bandwidth,
            bytes_moved: 0,
            ram_lo: usize::MAX,
            ram_hi: 0,
        }
    }

    /// RAM byte range written by ToRam transfers since the last reset
    /// (`None` when no such write happened).
    pub fn ram_written_range(&self) -> Option<(usize, usize)> {
        (self.ram_lo < self.ram_hi).then_some((self.ram_lo, self.ram_hi))
    }

    /// Restore from `pristine`, clearing the RAM-write watermark. Returns
    /// state bytes copied (zero-copy campaign reset accounting).
    pub fn reset_from(&mut self, pristine: &DmaEngine) -> u64 {
        self.jobs.clone_from(&pristine.jobs);
        self.progress = pristine.progress;
        self.bandwidth = pristine.bandwidth;
        self.bytes_moved = pristine.bytes_moved;
        self.ram_lo = usize::MAX;
        self.ram_hi = 0;
        self.jobs.len() as u64 * std::mem::size_of::<DmaJob>() as u64 + 24
    }

    /// Functional-state equality for the convergence exit: the job queue,
    /// in-flight progress and bandwidth steer future transfers; the
    /// bytes-moved tally and RAM watermark are observational.
    pub fn state_eq(&self, pristine: &DmaEngine) -> bool {
        self.jobs == pristine.jobs
            && self.progress == pristine.progress
            && self.bandwidth == pristine.bandwidth
    }

    pub fn push(&mut self, job: DmaJob) {
        self.jobs.push_back(job);
    }

    pub fn busy(&self) -> bool {
        !self.jobs.is_empty()
    }

    /// Advance one cycle; returns `false` on an out-of-range transfer.
    pub fn tick(&mut self, ram: &mut [u8], accel: &mut Accelerator) -> bool {
        self.tick_tainted(ram, None, accel)
    }

    /// [`tick`](Self::tick) with an optional RAM taint shadow (marvel-taint):
    /// shadow bytes move with the data, and tainted bytes drained to RAM
    /// are recorded as architecturally visible.
    pub fn tick_tainted(
        &mut self,
        ram: &mut [u8],
        ram_shadow: Option<&mut [u8]>,
        accel: &mut Accelerator,
    ) -> bool {
        let Some(job) = self.jobs.front().copied() else { return true };
        let n = self.bandwidth.min(job.len - self.progress);
        let ram_lo = job.ram_off + self.progress;
        if ram_lo + n > ram.len() {
            return false;
        }
        let mem_lo = job.mem_off + self.progress;
        match job.dir {
            DmaDir::ToSram => {
                let chunk = ram[ram_lo..ram_lo + n].to_vec();
                if accel.mem(job.mem).fill(mem_lo, &chunk).is_none() {
                    return false;
                }
                if accel.taint_enabled() {
                    let zeros;
                    let sh: &[u8] = match &ram_shadow {
                        Some(s) if s.len() >= ram_lo + n => &s[ram_lo..ram_lo + n],
                        _ => {
                            zeros = vec![0u8; n];
                            &zeros
                        }
                    };
                    let mname = accel.mem_ref(job.mem).kind.name();
                    accel.mem(job.mem).taint_fill(mem_lo, sh);
                    if sh.iter().any(|&b| b != 0) {
                        accel.taint_hop("RAM", mname);
                    }
                }
            }
            DmaDir::ToRam => match accel.mem(job.mem).drain(mem_lo, n) {
                Some(chunk) => {
                    self.ram_lo = self.ram_lo.min(ram_lo);
                    self.ram_hi = self.ram_hi.max(ram_lo + n);
                    ram[ram_lo..ram_lo + n].copy_from_slice(&chunk);
                    if accel.taint_enabled() {
                        let sh =
                            accel.mem_ref(job.mem).taint_drain(mem_lo, n).unwrap_or_else(|| vec![0; n]);
                        if let Some(rs) = ram_shadow {
                            if rs.len() >= ram_lo + n {
                                rs[ram_lo..ram_lo + n].copy_from_slice(&sh);
                            }
                        }
                        if sh.iter().any(|&b| b != 0) {
                            let mname = accel.mem_ref(job.mem).kind.name();
                            accel.taint_hop(mname, "RAM");
                            accel.taint_arch(mname);
                        }
                    }
                }
                None => return false,
            },
        }
        self.progress += n;
        self.bytes_moved += n as u64;
        if self.progress >= job.len {
            self.jobs.pop_front();
            self.progress = 0;
        }
        true
    }

    /// Run all queued jobs to completion; returns cycles consumed.
    pub fn run_all(&mut self, ram: &mut [u8], accel: &mut Accelerator) -> Option<u64> {
        let mut cycles = 0;
        while self.busy() {
            if !self.tick(ram, accel) {
                return None;
            }
            cycles += 1;
        }
        Some(cycles)
    }

    /// [`run_all`](Self::run_all) with a RAM taint shadow.
    pub fn run_all_tainted(
        &mut self,
        ram: &mut [u8],
        ram_shadow: &mut [u8],
        accel: &mut Accelerator,
    ) -> Option<u64> {
        let mut cycles = 0;
        while self.busy() {
            if !self.tick_tainted(ram, Some(ram_shadow), accel) {
                return None;
            }
            cycles += 1;
        }
        Some(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::air::CdfgBuilder;
    use crate::engine::FuConfig;
    use crate::sram::{Sram, SramKind};

    fn dummy_accel() -> Accelerator {
        let mut g = CdfgBuilder::new();
        let b = g.block(0);
        g.select(b);
        g.finish();
        let spm = Sram::new("S", SramKind::Spm, 64, 2);
        Accelerator::new("d", g.build().unwrap(), FuConfig::default(), vec![spm], vec![], 0)
    }

    #[test]
    fn roundtrip_transfer() {
        let mut a = dummy_accel();
        let mut ram = vec![0u8; 128];
        for (i, b) in ram.iter_mut().enumerate().take(32) {
            *b = i as u8;
        }
        let mut dma = DmaEngine::new(8);
        dma.push(DmaJob { dir: DmaDir::ToSram, ram_off: 0, mem: MemRef::Spm(0), mem_off: 0, len: 32 });
        let c1 = dma.run_all(&mut ram, &mut a).unwrap();
        assert_eq!(c1, 4); // 32 bytes at 8 B/cycle
        assert_eq!(a.spms[0].bytes()[..32], (0..32).map(|i| i as u8).collect::<Vec<_>>()[..]);
        dma.push(DmaJob { dir: DmaDir::ToRam, ram_off: 64, mem: MemRef::Spm(0), mem_off: 0, len: 32 });
        dma.run_all(&mut ram, &mut a).unwrap();
        assert_eq!(ram[64..96], ram[0..32].to_vec()[..]);
    }

    #[test]
    fn out_of_range_fails() {
        let mut a = dummy_accel();
        let mut ram = vec![0u8; 16];
        let mut dma = DmaEngine::new(8);
        dma.push(DmaJob { dir: DmaDir::ToSram, ram_off: 0, mem: MemRef::Spm(0), mem_off: 60, len: 16 });
        assert!(dma.run_all(&mut ram, &mut a).is_none());
    }
}
