//! Static CDFG schedules and golden firing traces for the event-driven
//! engine.
//!
//! The cycle engine's issue logic is value-independent: node readiness
//! depends only on operand completion, FU issue slots refresh every
//! cycle, latencies are static ([`NodeOp::latency`] plus the memory's
//! read latency), and the per-memory load/store ordering is structural
//! (operand indices always point backwards, enforced by
//! [`Cdfg::validate`](crate::air::Cdfg::validate)). The only
//! value-dependent behaviours are terminator directions and
//! out-of-bounds accesses — both still handled by the engine at run
//! time. A block's fire pattern can therefore be computed once per
//! (design, FU config, memory timing) by replaying the scheduler
//! skeleton without values, and the engine can then jump straight from
//! event cycle to event cycle instead of scanning every node every
//! cycle.

use crate::air::{Block, Cdfg, FuClass, MemRef, NodeOp, NODE_NONE};
use crate::engine::FuConfig;

/// Port count and read latency of one memory, as the scheduler sees it.
#[derive(Debug, Clone, Copy)]
pub struct MemTiming {
    pub ports: usize,
    pub read_latency: u32,
}

/// One node issue: (cycle relative to block entry, node index).
pub type Fire = (u32, u32);

/// Value-independent fire pattern of one block: every node issue in
/// (cycle, issue-order) order, plus the relative cycle at which the
/// terminator executes once the last node has retired. Fire cycles and
/// the terminator cycle never coincide — the terminator only runs on the
/// first cycle with nothing left to issue or retire.
///
/// `loads`/`stores`/`n_memoizable` are static manifests over the fire
/// list, used by the engine's whole-block warp path: when a block
/// instance provably touches no tainted data, the engine applies the
/// recorded stores and skips per-fire execution entirely.
#[derive(Debug, Clone)]
pub struct BlockSchedule {
    pub fires: Vec<Fire>,
    pub term_rel: u32,
    /// `(mem, width)` of every load, in fire order.
    pub loads: Vec<(MemRef, u8)>,
    /// `(mem, width)` of every store, in fire order.
    pub stores: Vec<(MemRef, u8)>,
    /// Fires that count as memo hits when a whole instance replays from
    /// the golden trace (everything except Const/Arg/Store — mirroring
    /// the per-fire memo rules).
    pub n_memoizable: u64,
}

/// Static schedule of a whole CDFG under one FU/memory configuration.
/// Built by [`build_schedule`]; owned by the accelerator behind an `Arc`
/// so clones and resets share it.
#[derive(Debug, Clone)]
pub struct StaticSchedule {
    pub blocks: Vec<BlockSchedule>,
}

/// Golden node-firing trace of one fault-free run: the value produced by
/// every fired node in global fire order, plus the block-entry sequence
/// (block index, absolute entry cycle) used for replay alignment. While
/// a faulty run's control path matches `entries`, untainted nodes are
/// bit-identical to the golden run and can take their value from
/// `fire_vals` instead of re-evaluating.
///
/// `entry_args`, `load_addrs` and `store_ops` feed the whole-block warp
/// path: with the per-load golden addresses a block instance can be
/// proven untainted up front (addresses are golden as long as every
/// *earlier* load in fire order was clean), after which only the
/// recorded stores need applying and the recorded successor entry
/// provides the terminator decision.
#[derive(Debug, Clone, Default)]
pub struct GoldenTrace {
    pub fire_vals: Vec<u64>,
    pub entries: Vec<(u32, u64)>,
    /// Block-entry argument values, parallel to `entries`.
    pub entry_args: Vec<Vec<u64>>,
    /// Golden address of every load, in global fire order.
    pub load_addrs: Vec<u64>,
    /// Golden `(address, value)` of every store, in global fire order.
    pub store_ops: Vec<(u64, u64)>,
}

/// Bound on the relative cycles a single block may take before the
/// builder declares the design unschedulable (e.g. an FU class with zero
/// units can starve a node forever). Callers then stay on the cycle
/// engine.
const BLOCK_CYCLE_BOUND: u64 = 1 << 22;

/// Compute the static schedule, or `None` if any block fails to drain
/// within [`BLOCK_CYCLE_BOUND`] cycles.
pub fn build_schedule(
    cdfg: &Cdfg,
    fu: &FuConfig,
    spms: &[MemTiming],
    regbanks: &[MemTiming],
) -> Option<StaticSchedule> {
    let timing = |m: MemRef| match m {
        MemRef::Spm(i) => spms.get(i).copied(),
        MemRef::RegBank(i) => regbanks.get(i).copied(),
    };
    let mut blocks = Vec::with_capacity(cdfg.blocks.len());
    for b in &cdfg.blocks {
        blocks.push(schedule_block(b, fu, &timing)?);
    }
    Some(StaticSchedule { blocks })
}

/// Replay the cycle engine's retire → terminator-check → issue skeleton
/// for one block, with real FU/port arbitration and latencies but no
/// values. Must mirror `Accelerator::step_block` exactly — the schedule
/// fuzzer pins the two against each other cycle-for-cycle.
fn schedule_block(
    b: &Block,
    fu: &FuConfig,
    timing: &impl Fn(MemRef) -> Option<MemTiming>,
) -> Option<BlockSchedule> {
    let n = b.nodes.len();
    let mut done = vec![false; n];
    let mut started = vec![false; n];
    let mut pending: Vec<(u64, u32)> = Vec::new();
    let mut remaining = n;
    let mut fires: Vec<Fire> = Vec::new();
    let mut rel: u64 = 0;
    loop {
        rel += 1;
        if rel > BLOCK_CYCLE_BOUND {
            return None;
        }
        let mut i = 0;
        while i < pending.len() {
            if pending[i].0 <= rel {
                let (_, ni) = pending.swap_remove(i);
                done[ni as usize] = true;
                remaining -= 1;
            } else {
                i += 1;
            }
        }
        if remaining == 0 {
            let mut loads = Vec::new();
            let mut stores = Vec::new();
            let mut n_memoizable = 0u64;
            for &(_, ni) in &fires {
                match b.nodes[ni as usize].op {
                    NodeOp::Load { mem, w } => {
                        loads.push((mem, w));
                        n_memoizable += 1;
                    }
                    NodeOp::Store { mem, w } => stores.push((mem, w)),
                    NodeOp::Const(_) | NodeOp::Arg(_) => {}
                    _ => n_memoizable += 1,
                }
            }
            return Some(BlockSchedule {
                fires,
                term_rel: u32::try_from(rel).ok()?,
                loads,
                stores,
                n_memoizable,
            });
        }
        let mut int_left = fu.int_alu;
        let mut fpa_left = fu.fp_add;
        let mut fpm_left = fu.fp_mul;
        let mut mem_used: Vec<(MemRef, usize)> = Vec::new();
        for ni in 0..n {
            if started[ni] {
                continue;
            }
            let node = b.nodes[ni];
            let ready = [node.a, node.b, node.c].iter().all(|&o| o == NODE_NONE || done[o as usize]);
            if !ready {
                continue;
            }
            if let Some(m) = node.op.is_mem() {
                let blocked = b.nodes[..ni].iter().enumerate().any(|(pi, p)| {
                    p.op.is_mem() == Some(m) && !done[pi] && (p.op.is_store() != node.op.is_store())
                });
                if blocked {
                    continue;
                }
            }
            match node.op.fu_class() {
                FuClass::Free => {}
                FuClass::IntAlu => {
                    if int_left == 0 {
                        continue;
                    }
                    int_left -= 1;
                }
                FuClass::FpAdd => {
                    if fpa_left == 0 {
                        continue;
                    }
                    fpa_left -= 1;
                }
                FuClass::FpMul => {
                    if fpm_left == 0 {
                        continue;
                    }
                    fpm_left -= 1;
                }
                FuClass::MemPort(m) => {
                    let ports = timing(m)?.ports;
                    match mem_used.iter_mut().find(|(mm, _)| *mm == m) {
                        Some((_, used)) => {
                            if *used >= ports {
                                continue;
                            }
                            *used += 1;
                        }
                        None => mem_used.push((m, 1)),
                    }
                }
            }
            started[ni] = true;
            fires.push((u32::try_from(rel).ok()?, ni as u32));
            let mut lat = node.op.latency();
            if let NodeOp::Load { mem, .. } = node.op {
                lat += timing(mem)?.read_latency;
            }
            if lat == 0 {
                done[ni] = true;
                remaining -= 1;
            } else {
                pending.push((rel + lat as u64, ni as u32));
            }
        }
    }
}
