//! # marvel-accel
//!
//! gem5-SALAM-style domain-specific accelerator modelling: a CDFG dynamic
//! execution engine ([`engine::Accelerator`]) with functional-unit
//! constraints, scratchpad memories and register banks ([`sram::Sram`]),
//! memory-mapped registers ([`mmr::Mmr`]), and a DMA engine
//! ([`dma::DmaEngine`]) — every storage element bit-accurate and
//! fault-injectable.
//!
//! ```
//! use marvel_accel::air::{CdfgBuilder, MemRef};
//! use marvel_accel::engine::{Accelerator, AccelState, FuConfig};
//! use marvel_accel::sram::{Sram, SramKind};
//! use marvel_isa::AluOp;
//!
//! // doubler: OUT[0] = IN[0] * 2
//! let mut g = CdfgBuilder::new();
//! let b = g.block(0);
//! g.select(b);
//! let zero = g.konst(0);
//! let v = g.load(MemRef::Spm(0), 8, zero);
//! let two = g.konst(2);
//! let d = g.alu(AluOp::Mul, v, two);
//! g.store(MemRef::Spm(1), 8, zero, d);
//! g.finish();
//!
//! let mut a = Accelerator::new(
//!     "doubler",
//!     g.build()?,
//!     FuConfig::default(),
//!     vec![Sram::new("IN", SramKind::Spm, 8, 1), Sram::new("OUT", SramKind::Spm, 8, 1)],
//!     vec![],
//!     0,
//! );
//! a.spms[0].write(0, 8, 21).unwrap();
//! a.start(&[]);
//! while a.tick() == AccelState::Running {}
//! assert_eq!(a.spms[1].read(0, 8), Some(42));
//! # Ok::<(), String>(())
//! ```

pub mod air;
pub mod dma;
pub mod engine;
pub mod mmr;
pub mod schedule;
pub mod sram;

pub use air::{Cdfg, CdfgBuilder, MemRef, NodeId, NodeOp};
pub use dma::{DmaDir, DmaEngine, DmaJob};
pub use engine::{AccelEngine, AccelError, AccelState, AccelStats, Accelerator, FuConfig};
pub use mmr::Mmr;
pub use schedule::{build_schedule, BlockSchedule, GoldenTrace, MemTiming, StaticSchedule};
pub use sram::{Sram, SramFate, SramKind};
