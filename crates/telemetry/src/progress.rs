//! Live campaign progress: rate, ETA and the running AVF estimate.

use std::time::Instant;

/// Formats the periodic progress line a campaign prints while workers
/// chew through injection runs:
///
/// ```text
/// campaign: 400/1000 runs  40.0% | 132.8 runs/s | ETA 4.5s | AVF 12.50% ± 3.10% | ET 34.0%
/// ```
///
/// The meter only *formats*; the caller supplies current tallies read from
/// its registry counters, and the AVF margin (which needs the campaign's
/// fault-site population) is computed by the campaign layer.
#[derive(Debug, Clone)]
pub struct ProgressMeter {
    label: String,
    total: u64,
    started: Instant,
    /// Runs already complete when this meter started (journal resume):
    /// they count toward progress but not toward the rate/ETA estimate —
    /// this process did none of that work.
    prior: u64,
}

/// Runs needed before the rate/ETA estimate is displayed. The first few
/// completions land within milliseconds of campaign start, so
/// `done / elapsed` is dominated by scheduling noise and the ETA swings
/// wildly; withholding the estimate until a minimum sample exists keeps
/// early progress lines stable.
pub const MIN_RUNS_FOR_RATE: u64 = 10;

impl ProgressMeter {
    pub fn new(label: &str, total_runs: u64) -> ProgressMeter {
        ProgressMeter::resumed(label, total_runs, 0)
    }

    /// A meter for a campaign resumed from a journal: `prior` runs are
    /// already on disk. Without this, the recovered prefix would be
    /// divided by the fresh process's elapsed time, inflating runs/s (and
    /// deflating the ETA) until new completions dilute it.
    pub fn resumed(label: &str, total_runs: u64, prior: u64) -> ProgressMeter {
        ProgressMeter { label: label.to_string(), total: total_runs, started: Instant::now(), prior }
    }

    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Render the line for the current state. `sdc`/`crash`/`early` are
    /// run tallies; `margin` is the ± on the running AVF estimate.
    pub fn line(&self, done: u64, sdc: u64, crash: u64, early: u64, margin: f64) -> String {
        // Only runs this process completed feed the rate; the journaled
        // prefix of a resumed campaign took no time here.
        let fresh = done.saturating_sub(self.prior);
        // Don't seed the rate estimate until enough runs completed (for
        // tiny campaigns: until half the runs are in).
        let warm = fresh >= MIN_RUNS_FOR_RATE.min(self.total.saturating_sub(self.prior) / 2 + 1);
        let elapsed = self.elapsed_secs().max(1e-9);
        let rate = fresh as f64 / elapsed;
        let (rate_s, eta) = if !warm || rate <= 0.0 {
            ("--".to_string(), "?".to_string())
        } else {
            (format!("{rate:.1}"), format_secs((self.total.saturating_sub(done)) as f64 / rate))
        };
        let pct = if self.total == 0 { 100.0 } else { 100.0 * done as f64 / self.total as f64 };
        let avf = if done == 0 { 0.0 } else { 100.0 * (sdc + crash) as f64 / done as f64 };
        let et = if done == 0 { 0.0 } else { 100.0 * early as f64 / done as f64 };
        format!(
            "{}: {}/{} runs {:>5.1}% | {} runs/s | ETA {} | AVF {:.2}% ± {:.2}% | ET {:.1}%",
            self.label,
            done,
            self.total,
            pct,
            rate_s,
            eta,
            avf,
            margin * 100.0,
            et
        )
    }
}

impl ProgressMeter {
    /// Render the current state as one JSON line for streaming consumers
    /// (the campaign service's watch stream). Same inputs as
    /// [`ProgressMeter::line`], machine-readable shape.
    pub fn json_line(&self, done: u64, sdc: u64, crash: u64, early: u64, margin: f64) -> String {
        let avf = if done == 0 { 0.0 } else { (sdc + crash) as f64 / done as f64 };
        format!(
            "{{\"type\":\"progress\",\"label\":{},\"done\":{done},\"total\":{},\"sdc\":{sdc},\"crash\":{crash},\"early\":{early},\"avf\":{avf:.6},\"margin\":{margin:.6},\"elapsed_s\":{:.3}}}",
            crate::export::json_string(&self.label),
            self.total,
            self.elapsed_secs()
        )
    }
}

fn format_secs(s: f64) -> String {
    if s < 60.0 {
        format!("{s:.1}s")
    } else if s < 3600.0 {
        format!("{}m{:02.0}s", (s / 60.0) as u64, s % 60.0)
    } else {
        format!("{}h{:02}m", (s / 3600.0) as u64, ((s % 3600.0) / 60.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_contains_all_fields() {
        let m = ProgressMeter::new("campaign", 1000);
        let line = m.line(400, 30, 20, 136, 0.031);
        assert!(line.contains("400/1000"), "{line}");
        assert!(line.contains("40.0%"), "{line}");
        assert!(line.contains("AVF 12.50% ± 3.10%"), "{line}");
        assert!(line.contains("ET 34.0%"), "{line}");
        assert!(line.contains("ETA"), "{line}");
    }

    #[test]
    fn zero_done_is_safe() {
        let m = ProgressMeter::new("campaign", 10);
        let line = m.line(0, 0, 0, 0, 0.0);
        assert!(line.contains("0/10"), "{line}");
        assert!(line.contains("ETA ?"), "{line}");
    }

    #[test]
    fn eta_withheld_until_minimum_run_count() {
        // Below the warm-up threshold the rate/ETA must read as unknown
        // — a couple of instant completions must not print a bogus ETA.
        let m = ProgressMeter::new("campaign", 1000);
        for done in 1..MIN_RUNS_FOR_RATE {
            let line = m.line(done, 0, 0, 0, 0.0);
            assert!(line.contains("-- runs/s"), "{line}");
            assert!(line.contains("ETA ?"), "{line}");
        }
        // At the threshold the estimate appears.
        let line = m.line(MIN_RUNS_FOR_RATE, 0, 0, 0, 0.0);
        assert!(!line.contains("ETA ?"), "{line}");
        assert!(!line.contains("-- runs/s"), "{line}");
    }

    #[test]
    fn tiny_campaigns_warm_up_at_half() {
        // A 4-run campaign can't wait for 10 completions; the threshold
        // scales down so the final runs still get an ETA.
        let m = ProgressMeter::new("campaign", 4);
        assert!(m.line(2, 0, 0, 0, 0.0).contains("ETA ?"));
        assert!(!m.line(3, 0, 0, 0, 0.0).contains("ETA ?"));
    }

    #[test]
    fn json_line_carries_tallies() {
        let m = ProgressMeter::new("campaign", 1000);
        let line = m.json_line(400, 30, 20, 136, 0.031);
        assert!(line.starts_with("{\"type\":\"progress\",\"label\":\"campaign\""), "{line}");
        assert!(line.contains("\"done\":400,\"total\":1000"), "{line}");
        assert!(line.contains("\"avf\":0.125000"), "{line}");
        assert!(line.contains("\"margin\":0.031000"), "{line}");
        assert!(!line.contains('\n'), "{line}");
    }

    #[test]
    fn resumed_meter_excludes_journaled_prefix_from_rate() {
        // A campaign resumed with 900/1000 runs already journaled must
        // not report ~900 runs-per-instant: the rate stays withheld until
        // enough *fresh* completions exist, then reflects only them.
        let m = ProgressMeter::resumed("campaign", 1000, 900);
        let line = m.line(900, 0, 0, 0, 0.0);
        assert!(line.contains("900/1000"), "{line}");
        assert!(line.contains("-- runs/s"), "{line}");
        assert!(line.contains("ETA ?"), "{line}");
        // A few fresh runs: still below the warm threshold.
        assert!(m.line(905, 0, 0, 0, 0.0).contains("ETA ?"));
        // Enough fresh runs: the estimate appears, and it is on the order
        // of the fresh count over elapsed — not the journaled total.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let line = m.line(910, 0, 0, 0, 0.0);
        assert!(!line.contains("ETA ?"), "{line}");
        let rate: f64 = line
            .split(" runs/s")
            .next()
            .and_then(|s| s.rsplit("| ").next())
            .and_then(|s| s.trim().parse().ok())
            .expect("rate parses");
        // 10 fresh runs over ≥20ms is at most 500/s; the inflated figure
        // would be 910 runs over the same window (≥45k/s).
        assert!(rate <= 510.0, "rate {rate} should reflect fresh runs only: {line}");
    }

    #[test]
    fn eta_formats_scale() {
        assert_eq!(format_secs(5.0), "5.0s");
        assert_eq!(format_secs(125.0), "2m05s");
        assert_eq!(format_secs(7320.0), "2h02m");
    }
}
