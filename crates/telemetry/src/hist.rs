//! Fixed-bucket power-of-two histograms on atomics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: bucket `i` holds values whose upper bound is `2^i - 1`
/// (bucket 0 = {0}), bucket 64 catches everything above `2^63 - 1`.
const BUCKETS: usize = 65;

/// A lock-free histogram with fixed power-of-two buckets.
///
/// `record` is two relaxed `fetch_add`s plus a `leading_zeros` — cheap
/// enough to leave enabled in campaign hot loops. Bucket boundaries are
/// value-independent, so merging/snapshotting needs no coordination.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    /// `(inclusive upper bound, count)` for every non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
}

impl Histogram {
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i`.
    fn bound_of(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate instead of wrapping: a campaign recording u64-scale
        // values (e.g. `u64::MAX` sentinel cycles) must not lap the sum
        // and report a tiny mean.
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(value);
            match self.sum.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn snapshot(&self) -> HistSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((Self::bound_of(i), n))
            })
            .collect();
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl HistSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0.0..=1.0).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bound;
            }
        }
        self.buckets.last().map(|&(b, _)| b).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_power_of_two() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1006);
        // 0 → bound 0; 1 → bound 1; 2,3 → bound 3; 1000 → bound 1023.
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (3, 2), (1023, 1)]);
    }

    #[test]
    fn quantiles_and_mean() {
        let h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert!((s.mean() - 49.5).abs() < 1e-9);
        assert!(s.quantile(0.5) <= 63);
        assert_eq!(s.quantile(1.0), 127);
        assert_eq!(HistSnapshot { count: 0, sum: 0, buckets: vec![] }.quantile(0.5), 0);
    }

    #[test]
    fn extreme_values() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(u64::MAX, 1)]);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        assert!(s.buckets.is_empty());
        assert_eq!(s.mean(), 0.0);
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(s.quantile(q), 0, "q={q}");
        }
    }

    #[test]
    fn single_sample_quantiles() {
        let h = Histogram::new();
        h.record(5);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        // Every quantile of a one-sample distribution is that sample's
        // bucket bound (5 → bucket [4,7]).
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(s.quantile(q), 7, "q={q}");
        }
        assert_eq!(s.mean(), 5.0);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(2);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        // A wrapping sum would report 1 here — and a mean of 0.5 for a
        // histogram whose every sample is astronomically large.
        assert_eq!(s.sum, u64::MAX);
        assert!(s.mean() > 1e18);
    }

    #[test]
    fn q0_is_the_minimum_bucket_bound() {
        let h = Histogram::new();
        h.record(100);
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 127);
        assert_eq!(s.quantile(1.0), 1023);
    }
}
