//! Per-cycle pipeline trace export in the Konata/Kanata log format.
//!
//! The CPU core (when `--trace-pipeline` is on) reports each micro-op's
//! stage timestamps here; [`PipeTracer::render_kanata`] serialises the
//! collected records as a `Kanata 0004` text log that the Konata
//! pipeline viewer can open directly. Rendering a golden and a faulty
//! run side by side makes the divergence point visually inspectable.

/// Stage timestamps for one micro-op. `None` means the op never reached
/// that stage (squashed on a flush, or still in flight at simulation
/// end — both render as a flush retirement).
#[derive(Debug, Clone)]
pub struct PipeRecord {
    pub seq: u64,
    pub pc: u64,
    pub label: String,
    pub fetched: u64,
    pub dispatched: u64,
    pub issued: Option<u64>,
    pub completed: Option<u64>,
    pub committed: Option<u64>,
    /// Set at commit when the op retired a tainted result.
    pub tainted: bool,
}

/// Bounded collector of [`PipeRecord`]s, keyed by sequence number.
#[derive(Debug, Clone)]
pub struct PipeTracer {
    records: Vec<PipeRecord>,
    cap: usize,
    truncated: bool,
}

impl Default for PipeTracer {
    fn default() -> Self {
        PipeTracer::new(200_000)
    }
}

impl PipeTracer {
    pub fn new(cap: usize) -> PipeTracer {
        PipeTracer { records: Vec::new(), cap, truncated: false }
    }

    /// Records are created at dispatch (sequence numbers are unique and
    /// dispatch happens in seq order, so the vec stays sorted).
    pub fn dispatch(&mut self, seq: u64, pc: u64, label: String, fetched: u64, cycle: u64) {
        if self.records.len() >= self.cap {
            self.truncated = true;
            return;
        }
        self.records.push(PipeRecord {
            seq,
            pc,
            label,
            fetched,
            dispatched: cycle,
            issued: None,
            completed: None,
            committed: None,
            tainted: false,
        });
    }

    fn find(&mut self, seq: u64) -> Option<&mut PipeRecord> {
        let i = self.records.binary_search_by_key(&seq, |r| r.seq).ok()?;
        Some(&mut self.records[i])
    }

    pub fn issue(&mut self, seq: u64, cycle: u64) {
        if let Some(r) = self.find(seq) {
            if r.issued.is_none() {
                r.issued = Some(cycle);
            }
        }
    }

    pub fn complete(&mut self, seq: u64, cycle: u64) {
        if let Some(r) = self.find(seq) {
            if r.completed.is_none() {
                r.completed = Some(cycle);
            }
        }
    }

    pub fn commit(&mut self, seq: u64, cycle: u64, tainted: bool) {
        if let Some(r) = self.find(seq) {
            r.committed = Some(cycle);
            r.tainted = tainted;
        }
    }

    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn records(&self) -> &[PipeRecord] {
        &self.records
    }

    /// Serialise as a Konata-compatible `Kanata 0004` log.
    pub fn render_kanata(&self) -> String {
        // Build (cycle, line) events, then emit sorted with C deltas.
        let mut events: Vec<(u64, String)> = Vec::new();
        let mut max_cycle = 0;
        for (id, r) in self.records.iter().enumerate() {
            let id = id as u64;
            let taint = if r.tainted { " [TAINT]" } else { "" };
            events.push((r.fetched, format!("I\t{id}\t{}\t0", r.seq)));
            events.push((r.fetched, format!("L\t{id}\t0\t{:#x}: {}{taint}", r.pc, r.label)));
            // Stage chain: F -> Ds -> Is -> Cm, skipping stages the op
            // never entered (non-exec ops have no Is/Cm).
            let mut stages: Vec<(&str, u64)> = vec![("F", r.fetched), ("Ds", r.dispatched)];
            if let Some(c) = r.issued {
                stages.push(("Is", c));
            }
            if let Some(c) = r.completed {
                stages.push(("Cm", c));
            }
            events.push((stages[0].1, format!("S\t{id}\t0\t{}", stages[0].0)));
            for w in stages.windows(2) {
                let (_, prev_start) = w[0];
                let (name, start) = w[1];
                // Kanata stage ends must not precede their start.
                let start = start.max(prev_start);
                events.push((start, format!("E\t{id}\t0\t{}", w[0].0)));
                events.push((start, format!("S\t{id}\t0\t{name}")));
            }
            let last = stages.last().unwrap();
            let end = match r.committed {
                Some(c) => c.max(last.1),
                None => last.1 + 1,
            };
            events.push((end, format!("E\t{id}\t0\t{}", last.0)));
            let kind = if r.committed.is_some() { 0 } else { 1 };
            events.push((end, format!("R\t{id}\t{}\t{kind}", r.seq)));
            max_cycle = max_cycle.max(end);
        }
        events.sort_by_key(|(c, _)| *c);

        let mut out = String::from("Kanata\t0004\n");
        let mut cur = events.first().map(|(c, _)| *c).unwrap_or(0);
        out.push_str(&format!("C=\t{cur}\n"));
        for (c, line) in events {
            if c > cur {
                out.push_str(&format!("C\t{}\n", c - cur));
                cur = c;
            }
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipeTracer {
        let mut t = PipeTracer::new(16);
        t.dispatch(1, 0x4000_0000, "add r1, r2, r3".into(), 10, 12);
        t.issue(1, 14);
        t.complete(1, 15);
        t.commit(1, 16, false);
        t.dispatch(2, 0x4000_0004, "ld r4, [r5]".into(), 10, 12);
        t.issue(2, 15);
        t.complete(2, 20);
        t.commit(2, 21, true);
        t.dispatch(3, 0x4000_0008, "beq r1, r0".into(), 11, 13);
        // seq 3 squashed: never issues or commits.
        t
    }

    #[test]
    fn kanata_header_and_stage_lines() {
        let k = sample().render_kanata();
        let lines: Vec<&str> = k.lines().collect();
        assert_eq!(lines[0], "Kanata\t0004");
        assert_eq!(lines[1], "C=\t10");
        assert!(lines.iter().any(|l| l.starts_with("I\t0\t1\t0")));
        assert!(lines.contains(&"S\t0\t0\tF"));
        assert!(lines.contains(&"E\t0\t0\tCm"));
        // Retired ops use type 0, the squashed op type 1.
        assert!(lines.contains(&"R\t0\t1\t0"));
        assert!(lines.contains(&"R\t2\t3\t1"));
        // Tainted commit is flagged in the label.
        assert!(k.contains("[TAINT]"));
        assert!(k.contains("ld r4, [r5] [TAINT]"));
    }

    #[test]
    fn cycle_deltas_are_monotonic() {
        let k = sample().render_kanata();
        for l in k.lines().skip(2) {
            if let Some(d) = l.strip_prefix("C\t") {
                assert!(d.parse::<u64>().unwrap() > 0);
            }
        }
    }

    #[test]
    fn cap_truncates_without_corruption() {
        let mut t = PipeTracer::new(2);
        for s in 0..5 {
            t.dispatch(s, s * 4, format!("op{s}"), s, s + 1);
        }
        assert_eq!(t.len(), 2);
        assert!(t.is_truncated());
        // Updates to dropped seqs are ignored, retained ones still work.
        t.commit(4, 99, false);
        t.commit(1, 10, false);
        assert_eq!(t.records()[1].committed, Some(10));
    }

    #[test]
    fn non_exec_ops_render_without_issue_stage() {
        let mut t = PipeTracer::new(4);
        t.dispatch(7, 0x100, "halt".into(), 3, 4);
        t.commit(7, 6, false);
        let k = t.render_kanata();
        assert!(k.contains("S\t0\t0\tDs"));
        assert!(!k.contains("S\t0\t0\tIs"));
        assert!(k.contains("R\t0\t7\t0"));
    }
}
