//! Exporters for [`crate::span`] data: Chrome trace-event JSON (loadable
//! in Perfetto / `chrome://tracing`) and the per-phase wall-time
//! attribution table as a human-readable text table, CSV and JSONL —
//! schema-versioned like every other artifact this crate writes.

use crate::export::json_string;
use crate::span::{PhaseReport, TraceDump};

/// Version of the span trace / phase report schemas. Bump on any shape
/// change; readers must reject versions they do not understand.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// Render a [`TraceDump`] as Chrome trace-event JSON (the "JSON object
/// format": a `traceEvents` array of complete `"X"` events plus
/// `thread_name` metadata, one track per lane). Timestamps are µs since
/// the collector epoch, which is what the trace-event spec expects.
pub fn render_chrome_trace(dump: &TraceDump) -> String {
    fn track(events: &mut Vec<String>, tid: u64, name: &str) {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
            json_string(name)
        ));
    }
    fn span(
        events: &mut Vec<String>,
        tid: u64,
        phase: &str,
        start_us: u64,
        dur_us: u64,
        run: Option<u64>,
    ) {
        let args = match run {
            Some(r) => format!(",\"args\":{{\"run\":{r}}}"),
            None => String::new(),
        };
        events.push(format!(
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"name\":{},\"cat\":\"phase\",\"ts\":{start_us},\"dur\":{dur_us}{args}}}",
            json_string(phase)
        ));
    }
    let mut events: Vec<String> = Vec::new();
    for lane in std::iter::once(&dump.external).chain(dump.lanes.iter()) {
        track(&mut events, lane.tid, &lane.name);
        for ev in &lane.outer {
            span(&mut events, lane.tid, ev.phase.name(), ev.start_us, ev.dur_us, None);
        }
        for run in &lane.runs {
            for ev in &run.events {
                span(&mut events, lane.tid, ev.phase.name(), ev.start_us, ev.dur_us, Some(run.run));
            }
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"schema_version\":{TRACE_SCHEMA_VERSION}}},\"traceEvents\":[{}]}}",
        events.join(",")
    )
}

/// Render the attribution report as an aligned human table plus a
/// coverage line (attributed self time over collector wall time).
pub fn render_phase_table(rep: &PhaseReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>10} {:>12} {:>12} {:>10} {:>10}\n",
        "phase", "calls", "total_us", "self_us", "p50_us", "p95_us"
    ));
    for r in &rep.rows {
        out.push_str(&format!(
            "{:<16} {:>10} {:>12} {:>12} {:>10} {:>10}\n",
            r.phase.name(),
            r.calls,
            r.total_us,
            r.self_us,
            r.p50_us,
            r.p95_us
        ));
    }
    out.push_str(&format!(
        "attributed {} µs of {} µs wall ({:.1}%)\n",
        rep.self_total_us(),
        rep.wall_us,
        rep.coverage() * 100.0
    ));
    out
}

/// Render the attribution report as CSV, schema header first (same
/// convention as [`crate::export::render_csv`]).
pub fn render_phase_csv(rep: &PhaseReport) -> String {
    let mut out =
        format!("# schema_version={TRACE_SCHEMA_VERSION}\nphase,calls,total_us,self_us,p50_us,p95_us\n");
    for r in &rep.rows {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.phase.name(),
            r.calls,
            r.total_us,
            r.self_us,
            r.p50_us,
            r.p95_us
        ));
    }
    out
}

/// Render the attribution report as JSONL: a schema/header line carrying
/// the wall clock, then one object per phase.
pub fn render_phase_jsonl(rep: &PhaseReport) -> String {
    let mut out = format!(
        "{{\"type\":\"phase_report\",\"schema_version\":{TRACE_SCHEMA_VERSION},\"wall_us\":{},\"attributed_us\":{}}}\n",
        rep.wall_us,
        rep.self_total_us()
    );
    for r in &rep.rows {
        out.push_str(&format!(
            "{{\"type\":\"phase\",\"phase\":{},\"calls\":{},\"total_us\":{},\"self_us\":{},\"p50_us\":{},\"p95_us\":{}}}\n",
            json_string(r.phase.name()),
            r.calls,
            r.total_us,
            r.self_us,
            r.p50_us,
            r.p95_us
        ));
    }
    out
}

/// Render phase totals as one JSON object string (`{"SimStepCpu":{...}}`)
/// for embedding in protocol messages (the service `METRICS`/`PROFILE`
/// responses) and the campaign bench's schema-v3 scenario breakdowns.
pub fn render_phase_object(rep: &PhaseReport) -> String {
    let rows: Vec<String> = rep
        .rows
        .iter()
        .map(|r| {
            format!(
                "{}:{{\"calls\":{},\"total_us\":{},\"self_us\":{},\"p50_us\":{},\"p95_us\":{}}}",
                json_string(r.phase.name()),
                r.calls,
                r.total_us,
                r.self_us,
                r.p50_us,
                r.p95_us
            )
        })
        .collect();
    format!("{{{}}}", rows.join(","))
}

/// Render a Prometheus-style text exposition of a registry snapshot plus
/// phase totals: counters as-is, histograms as `_count`/`_sum` plus
/// cumulative `_bucket{le=...}` series, phase self/total/calls with a
/// `phase` label. Metric names are sanitised to `[a-zA-Z0-9_:]`.
pub fn render_prometheus(snap: &crate::registry::Snapshot, rep: &PhaseReport, labels: &str) -> String {
    let metric = |name: &str| -> String {
        let mut m = String::from("marvel_");
        for c in name.chars() {
            m.push(if c.is_ascii_alphanumeric() || c == ':' { c } else { '_' });
        }
        m
    };
    let with = |extra: &str| -> String {
        match (labels.is_empty(), extra.is_empty()) {
            (true, true) => String::new(),
            (true, false) => format!("{{{extra}}}"),
            (false, true) => format!("{{{labels}}}"),
            (false, false) => format!("{{{labels},{extra}}}"),
        }
    };
    let mut out = String::new();
    for (name, v) in &snap.counters {
        out.push_str(&format!("{}{} {v}\n", metric(name), with("")));
    }
    for (name, h) in &snap.histograms {
        let base = metric(name);
        let mut cum = 0u64;
        for &(le, n) in &h.buckets {
            cum += n;
            let le = if le == u64::MAX { "+Inf".to_string() } else { le.to_string() };
            out.push_str(&format!("{base}_bucket{} {cum}\n", with(&format!("le=\"{le}\""))));
        }
        if h.buckets.last().map(|&(le, _)| le) != Some(u64::MAX) {
            out.push_str(&format!("{base}_bucket{} {cum}\n", with("le=\"+Inf\"")));
        }
        out.push_str(&format!("{base}_count{} {}\n", with(""), h.count));
        out.push_str(&format!("{base}_sum{} {}\n", with(""), h.sum));
    }
    for r in &rep.rows {
        let phase = with(&format!("phase=\"{}\"", r.phase.name()));
        out.push_str(&format!("marvel_phase_calls{phase} {}\n", r.calls));
        out.push_str(&format!("marvel_phase_total_microseconds{phase} {}\n", r.total_us));
        out.push_str(&format!("marvel_phase_self_microseconds{phase} {}\n", r.self_us));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::span::{PhaseId, SpanCollector};

    fn sample_collector() -> SpanCollector {
        let c = SpanCollector::enabled();
        let mut lane = c.lane("worker-0");
        lane.begin_run(3);
        lane.enter(PhaseId::SimStepCpu);
        lane.enter(PhaseId::ConvergenceDiff);
        lane.exit(PhaseId::ConvergenceDiff);
        lane.exit(PhaseId::SimStepCpu);
        lane.end_run();
        drop(lane);
        c.time(PhaseId::GoldenPrep, || {});
        c
    }

    #[test]
    fn chrome_trace_has_tracks_and_complete_events() {
        let c = sample_collector();
        let json = render_chrome_trace(&c.trace());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\""), "{json}");
        assert!(json.contains("\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"M\""), "{json}");
        assert!(json.contains("\"name\":\"thread_name\""), "{json}");
        assert!(json.contains("\"args\":{\"name\":\"worker-0\"}"), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"name\":\"SimStepCpu\""), "{json}");
        assert!(json.contains("\"args\":{\"run\":3}"), "{json}");
        assert!(json.contains("\"name\":\"GoldenPrep\""), "{json}");
        assert!(json.contains(&format!("\"schema_version\":{TRACE_SCHEMA_VERSION}")), "{json}");
        assert!(!json.contains('\n'));
    }

    #[test]
    fn phase_renderings_carry_schema_and_rows() {
        let c = sample_collector();
        let rep = c.report();
        let csv = render_phase_csv(&rep);
        assert!(csv.starts_with(&format!("# schema_version={TRACE_SCHEMA_VERSION}\n")));
        assert!(csv.contains("SimStepCpu,1,"), "{csv}");
        let jsonl = render_phase_jsonl(&rep);
        assert!(jsonl.lines().next().unwrap().contains("\"type\":\"phase_report\""), "{jsonl}");
        assert!(jsonl.contains("\"phase\":\"ConvergenceDiff\""), "{jsonl}");
        let table = render_phase_table(&rep);
        assert!(table.contains("GoldenPrep"), "{table}");
        assert!(table.contains("attributed"), "{table}");
        let obj = render_phase_object(&rep);
        assert!(obj.starts_with('{') && obj.ends_with('}'), "{obj}");
        assert!(obj.contains("\"SimStepCpu\":{\"calls\":1"), "{obj}");
    }

    #[test]
    fn prometheus_exposition_is_sanitised_and_cumulative() {
        let reg = Registry::new();
        reg.publish("campaign.runs", 10);
        let h = reg.histogram("journal.fsync_ns").unwrap();
        h.record(3);
        h.record(100);
        let c = sample_collector();
        let text = render_prometheus(&reg.snapshot(), &c.report(), "campaign=\"it-fft\"");
        assert!(text.contains("marvel_campaign_runs{campaign=\"it-fft\"} 10"), "{text}");
        assert!(text.contains("marvel_journal_fsync_ns_count{campaign=\"it-fft\"} 2"), "{text}");
        assert!(text.contains("marvel_journal_fsync_ns_sum{campaign=\"it-fft\"} 103"), "{text}");
        assert!(
            text.contains("marvel_journal_fsync_ns_bucket{campaign=\"it-fft\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("marvel_phase_self_microseconds{campaign=\"it-fft\",phase=\"SimStepCpu\"}"),
            "{text}"
        );
        // Cumulative buckets: the le="3" bucket holds 1, +Inf holds 2.
        let b3 = text.lines().find(|l| l.contains("le=\"3\"")).expect("bucket for value 3");
        assert!(b3.ends_with(" 1"), "{b3}");
    }
}
