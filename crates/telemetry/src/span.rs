//! marvel-spans: structured phase tracing for the campaign stack.
//!
//! A [`SpanCollector`] owns the shared aggregation state (per-phase call
//! counts, total/self wall time, duration histograms) behind an `Arc`,
//! mirroring [`crate::Registry`]'s disabled-is-a-single-branch idiom: a
//! default collector hands out no-op [`SpanLane`]s whose `enter`/`exit`
//! hot path is one `Option` check, so instrumentation stays compiled in
//! unconditionally.
//!
//! Each worker thread owns one [`SpanLane`]: a thread-local span *stack*
//! (enter/exit pairs, strictly nested) recording monotonic-clock deltas
//! against the collector's epoch. Completed spans land in preallocated
//! per-lane buffers — no allocation on the enter/exit hot path — and the
//! lane merges into the collector when it is dropped (worker exit).
//!
//! Per-run span *trees* are kept only for the K slowest runs of each lane
//! ([`SpanLane::begin_run`]/[`end_run`](SpanLane::end_run)); everything
//! else contributes to the aggregate tables only. This bounds trace
//! memory while keeping full nesting detail for exactly the runs a
//! throughput investigation wants to look at.
//!
//! Invariants (pinned by tests and documented in DESIGN.md):
//! * spans nest strictly — `exit` must match the innermost `enter`;
//! * a lane is single-threaded — only the aggregate tables are shared;
//! * phase *counts* are deterministic for a given campaign config
//!   (wall times are not), so trace runs are comparable across machines.

use crate::hist::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of distinct [`PhaseId`]s (array sizes below).
pub const PHASE_COUNT: usize = 17;

/// Static identifiers for every phase of the campaign pipeline, CPU and
/// DSA sides included. One enum across the whole stack keeps attribution
/// tables comparable between workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseId {
    /// Golden reference preparation (warmup + fault-free run).
    GoldenPrep,
    /// Checkpoint-ladder construction (CPU or DSA).
    LadderBuild,
    /// Establishing a run's base state by deep clone (checkpoint or rung).
    RungRestore,
    /// Zero-copy dirty reset against the pristine base.
    DirtyReset,
    /// Arming the fault: prefix advance to the injection cycle + the flip
    /// (transients) or stuck-at application (permanents).
    Inject,
    /// Post-injection cycle-level CPU simulation to a terminal outcome.
    SimStepCpu,
    /// Lane-packed CPU pass: one shared golden execution carrying up to
    /// 64 bit-plane fault lanes, retiring them in place.
    SimStepLane,
    /// A lane left its pass (divergence reached control flow, a memory
    /// address, store data or a corrupt byte was read) and is handed to
    /// an ordinary scalar re-run.
    LaneFork,
    /// Post-injection DSA simulation (DMA-in → compute → DMA-out).
    SimStepDsa,
    /// Static CDFG schedule construction plus golden firing-trace
    /// recording during DSA golden prep (the event engine's inputs).
    ScheduleBuild,
    /// Event-driven DSA stepping under golden-trace replay — the
    /// sub-attribution of [`PhaseId::SimStepDsa`] spent inside the
    /// memoizing engine rather than the cycle-exact oracle.
    TraceReplay,
    /// Dirty-diff state comparison at a ladder-rung crossing.
    ConvergenceDiff,
    /// Handing a finished record to the sink (journal append, slot store).
    ExportRecord,
    /// Journal record encode + buffered write.
    JournalAppend,
    /// Journal durability barrier (`sync_data`).
    JournalFsync,
    /// Claiming the next run from the shared schedule.
    Schedule,
    /// Service worker poll loop with no runnable campaign.
    Idle,
}

impl PhaseId {
    /// Every phase, in declaration order (stable across releases of the
    /// same trace schema version).
    pub const ALL: [PhaseId; PHASE_COUNT] = [
        PhaseId::GoldenPrep,
        PhaseId::LadderBuild,
        PhaseId::RungRestore,
        PhaseId::DirtyReset,
        PhaseId::Inject,
        PhaseId::SimStepCpu,
        PhaseId::SimStepLane,
        PhaseId::LaneFork,
        PhaseId::SimStepDsa,
        PhaseId::ScheduleBuild,
        PhaseId::TraceReplay,
        PhaseId::ConvergenceDiff,
        PhaseId::ExportRecord,
        PhaseId::JournalAppend,
        PhaseId::JournalFsync,
        PhaseId::Schedule,
        PhaseId::Idle,
    ];

    pub fn name(self) -> &'static str {
        match self {
            PhaseId::GoldenPrep => "GoldenPrep",
            PhaseId::LadderBuild => "LadderBuild",
            PhaseId::RungRestore => "RungRestore",
            PhaseId::DirtyReset => "DirtyReset",
            PhaseId::Inject => "Inject",
            PhaseId::SimStepCpu => "SimStepCpu",
            PhaseId::SimStepLane => "SimStepLane",
            PhaseId::LaneFork => "LaneFork",
            PhaseId::SimStepDsa => "SimStepDsa",
            PhaseId::ScheduleBuild => "ScheduleBuild",
            PhaseId::TraceReplay => "TraceReplay",
            PhaseId::ConvergenceDiff => "ConvergenceDiff",
            PhaseId::ExportRecord => "ExportRecord",
            PhaseId::JournalAppend => "JournalAppend",
            PhaseId::JournalFsync => "JournalFsync",
            PhaseId::Schedule => "Schedule",
            PhaseId::Idle => "Idle",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|&p| p == self).expect("phase is in ALL")
    }
}

/// One completed span: phase plus `[start, start+dur)` in microseconds
/// since the collector's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    pub phase: PhaseId,
    pub start_us: u64,
    pub dur_us: u64,
}

/// The retained span tree of one slowest-K run: mask index, wall window
/// and every span completed inside the run scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunTree {
    /// Mask index of the run (campaign order, not claim order).
    pub run: u64,
    pub start_us: u64,
    pub dur_us: u64,
    pub events: Vec<SpanEvent>,
}

/// Merged dump of one lane: worker identity, loose (non-run) spans, the
/// slowest-K run trees, and how many loose spans the bounded buffer shed.
#[derive(Debug, Clone)]
pub struct LaneDump {
    pub tid: u64,
    pub name: String,
    pub outer: Vec<SpanEvent>,
    pub runs: Vec<RunTree>,
    pub dropped: u64,
}

/// Everything needed to render a Chrome trace: one track per worker lane
/// plus the shared track for one-off phases timed via
/// [`SpanCollector::time`] (golden prep, ladder build, journal I/O).
#[derive(Debug, Clone)]
pub struct TraceDump {
    pub external: LaneDump,
    pub lanes: Vec<LaneDump>,
}

/// One row of the wall-time attribution table.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    pub phase: PhaseId,
    pub calls: u64,
    /// Wall time inside the phase, children included.
    pub total_us: u64,
    /// Wall time inside the phase, children excluded.
    pub self_us: u64,
    /// Per-call total-duration quantiles (power-of-two bucket bounds).
    pub p50_us: u64,
    pub p95_us: u64,
}

/// Point-in-time attribution report: every phase with at least one call,
/// sorted by self time descending, plus the collector wall clock.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    pub rows: Vec<PhaseRow>,
    /// Microseconds since the collector was created (its epoch).
    pub wall_us: u64,
}

impl PhaseReport {
    /// Sum of self time across phases — the attributed portion of the
    /// campaign's work.
    pub fn self_total_us(&self) -> u64 {
        self.rows.iter().map(|r| r.self_us).sum()
    }

    /// Attributed fraction of the collector's wall clock. Directly
    /// meaningful for single-worker campaigns (the ≥90% acceptance
    /// check); with N workers the attributed time can legitimately
    /// exceed 1.0 wall.
    pub fn coverage(&self) -> f64 {
        self.self_total_us() as f64 / (self.wall_us.max(1)) as f64
    }

    pub fn calls(&self, phase: PhaseId) -> u64 {
        self.rows.iter().find(|r| r.phase == phase).map_or(0, |r| r.calls)
    }
}

#[derive(Debug)]
struct PhaseAgg {
    calls: AtomicU64,
    total_us: AtomicU64,
    self_us: AtomicU64,
}

#[derive(Debug)]
struct SpanShared {
    epoch: Instant,
    ring_cap: usize,
    slow_k: usize,
    agg: [PhaseAgg; PHASE_COUNT],
    hist: [Histogram; PHASE_COUNT],
    external: Mutex<(Vec<SpanEvent>, u64)>,
    lanes: Mutex<Vec<LaneDump>>,
    next_tid: AtomicU64,
}

/// Shared handle to a campaign's span state. `Default` is disabled: every
/// lane it hands out is a no-op whose hot path is one branch, and
/// [`SpanCollector::time`] runs its closure unmeasured.
#[derive(Debug, Clone, Default)]
pub struct SpanCollector {
    shared: Option<Arc<SpanShared>>,
}

/// Default bound on loose (non-run) spans retained per lane.
pub const DEFAULT_RING_CAP: usize = 16 * 1024;
/// Default slowest-K run trees retained per lane.
pub const DEFAULT_SLOW_K: usize = 8;

impl SpanCollector {
    /// An enabled collector with explicit retention bounds.
    pub fn new(ring_cap: usize, slow_k: usize) -> SpanCollector {
        SpanCollector {
            shared: Some(Arc::new(SpanShared {
                epoch: Instant::now(),
                ring_cap,
                slow_k,
                agg: [const {
                    PhaseAgg {
                        calls: AtomicU64::new(0),
                        total_us: AtomicU64::new(0),
                        self_us: AtomicU64::new(0),
                    }
                }; PHASE_COUNT],
                hist: [const { Histogram::new() }; PHASE_COUNT],
                external: Mutex::new((Vec::new(), 0)),
                lanes: Mutex::new(Vec::new()),
                next_tid: AtomicU64::new(1),
            })),
        }
    }

    /// An enabled collector with the default retention bounds.
    pub fn enabled() -> SpanCollector {
        SpanCollector::new(DEFAULT_RING_CAP, DEFAULT_SLOW_K)
    }

    /// The disabled collector (same as `Default`).
    pub fn disabled() -> SpanCollector {
        SpanCollector::default()
    }

    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Microseconds since the collector was created. 0 when disabled.
    pub fn uptime_us(&self) -> u64 {
        self.shared.as_ref().map_or(0, |s| s.epoch.elapsed().as_micros() as u64)
    }

    /// Open a span lane for one worker thread. Lanes from a disabled
    /// collector are free to construct and no-ops to use.
    pub fn lane(&self, name: &str) -> SpanLane {
        let (tid, name) = match &self.shared {
            Some(s) => (s.next_tid.fetch_add(1, Ordering::Relaxed), name.to_string()),
            None => (0, String::new()),
        };
        SpanLane {
            shared: self.shared.clone(),
            tid,
            name,
            stack: Vec::with_capacity(8),
            scratch: Vec::with_capacity(64),
            outer: Vec::new(),
            dropped: 0,
            kept: Vec::new(),
            run: None,
        }
    }

    /// Time a one-off phase outside any lane (golden prep on the main
    /// thread, journal I/O under a state lock, service idle polls). The
    /// span lands on the shared "external" trace track and in the
    /// aggregate tables; when disabled, `f` runs unmeasured.
    pub fn time<T>(&self, phase: PhaseId, f: impl FnOnce() -> T) -> T {
        let Some(sh) = &self.shared else { return f() };
        let start_us = sh.epoch.elapsed().as_micros() as u64;
        let out = f();
        let dur_us = (sh.epoch.elapsed().as_micros() as u64).saturating_sub(start_us);
        sh.aggregate(phase, dur_us, dur_us);
        let mut ext = sh.external.lock().unwrap();
        if ext.0.len() < sh.ring_cap {
            ext.0.push(SpanEvent { phase, start_us, dur_us });
        } else {
            ext.1 += 1;
        }
        out
    }

    /// Build the wall-time attribution table from the live aggregates
    /// (no lane flush required — the tables are updated at span exit).
    pub fn report(&self) -> PhaseReport {
        let Some(sh) = &self.shared else { return PhaseReport { rows: Vec::new(), wall_us: 0 } };
        let mut rows: Vec<PhaseRow> = PhaseId::ALL
            .iter()
            .filter_map(|&phase| {
                let a = &sh.agg[phase.index()];
                let calls = a.calls.load(Ordering::Relaxed);
                if calls == 0 {
                    return None;
                }
                let h = sh.hist[phase.index()].snapshot();
                Some(PhaseRow {
                    phase,
                    calls,
                    total_us: a.total_us.load(Ordering::Relaxed),
                    self_us: a.self_us.load(Ordering::Relaxed),
                    p50_us: h.quantile(0.5),
                    p95_us: h.quantile(0.95),
                })
            })
            .collect();
        rows.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.phase.index().cmp(&b.phase.index())));
        PhaseReport { rows, wall_us: sh.epoch.elapsed().as_micros() as u64 }
    }

    /// Snapshot every flushed lane plus the external track. Lanes merge
    /// when dropped, so workers must have exited (the drive call
    /// returned) for their spans to appear here.
    pub fn trace(&self) -> TraceDump {
        let external = match &self.shared {
            Some(sh) => {
                let ext = sh.external.lock().unwrap();
                LaneDump {
                    tid: 0,
                    name: "main".to_string(),
                    outer: ext.0.clone(),
                    runs: Vec::new(),
                    dropped: ext.1,
                }
            }
            None => LaneDump {
                tid: 0,
                name: "main".to_string(),
                outer: Vec::new(),
                runs: Vec::new(),
                dropped: 0,
            },
        };
        let mut lanes = match &self.shared {
            Some(sh) => sh.lanes.lock().unwrap().clone(),
            None => Vec::new(),
        };
        lanes.sort_by_key(|l| l.tid);
        TraceDump { external, lanes }
    }
}

impl SpanShared {
    fn aggregate(&self, phase: PhaseId, dur_us: u64, self_us: u64) {
        let a = &self.agg[phase.index()];
        a.calls.fetch_add(1, Ordering::Relaxed);
        a.total_us.fetch_add(dur_us, Ordering::Relaxed);
        a.self_us.fetch_add(self_us, Ordering::Relaxed);
        self.hist[phase.index()].record(dur_us);
    }
}

#[derive(Debug)]
struct Frame {
    phase: PhaseId,
    start_us: u64,
    /// Wall time spent in completed child spans (for self-time).
    child_us: u64,
}

/// One worker thread's span stack and retention buffers. Not `Sync` by
/// design: all mutation is single-threaded; only span *exit* touches the
/// shared atomics. Dropping the lane merges its buffers into the
/// collector.
#[derive(Debug)]
pub struct SpanLane {
    shared: Option<Arc<SpanShared>>,
    tid: u64,
    name: String,
    stack: Vec<Frame>,
    /// Completed spans of the current run scope.
    scratch: Vec<SpanEvent>,
    /// Completed spans outside any run scope (bounded by `ring_cap`).
    outer: Vec<SpanEvent>,
    dropped: u64,
    /// Slowest-K run trees seen so far.
    kept: Vec<RunTree>,
    run: Option<(u64, u64)>,
}

impl SpanLane {
    /// A free-standing no-op lane (for the un-traced oracle entry points).
    pub fn disabled() -> SpanLane {
        SpanCollector::disabled().lane("")
    }

    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    fn now_us(sh: &SpanShared) -> u64 {
        sh.epoch.elapsed().as_micros() as u64
    }

    /// Open a span. Must be balanced by [`exit`](Self::exit) (or
    /// [`cancel`](Self::cancel)) with the same phase, innermost first.
    #[inline]
    pub fn enter(&mut self, phase: PhaseId) {
        let Some(sh) = &self.shared else { return };
        let start_us = Self::now_us(sh);
        self.stack.push(Frame { phase, start_us, child_us: 0 });
    }

    /// Close the innermost span: aggregate its total/self time and record
    /// the event in the current run scope (or the loose buffer).
    #[inline]
    pub fn exit(&mut self, phase: PhaseId) {
        let Some(sh) = &self.shared else { return };
        let now = Self::now_us(sh);
        let frame = self.stack.pop().expect("span exit without matching enter");
        debug_assert_eq!(frame.phase, phase, "span exit must match the innermost enter");
        let dur_us = now.saturating_sub(frame.start_us);
        // Microsecond rounding can make child sums exceed the parent by
        // a few µs; clamp rather than wrap.
        let self_us = dur_us.saturating_sub(frame.child_us);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_us += dur_us;
        }
        sh.aggregate(phase, dur_us, self_us);
        let ev = SpanEvent { phase, start_us: frame.start_us, dur_us };
        if self.run.is_some() {
            self.scratch.push(ev);
        } else if self.outer.len() < sh.ring_cap {
            self.outer.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Discard the innermost span without recording it (a claim that
    /// found the schedule drained).
    #[inline]
    pub fn cancel(&mut self, phase: PhaseId) {
        if self.shared.is_none() {
            return;
        }
        let frame = self.stack.pop().expect("span cancel without matching enter");
        debug_assert_eq!(frame.phase, phase, "span cancel must match the innermost enter");
    }

    /// Open a run scope for mask index `run`: subsequent spans build this
    /// run's tree until [`end_run`](Self::end_run) decides whether it is
    /// one of the lane's slowest K.
    #[inline]
    pub fn begin_run(&mut self, run: u64) {
        let Some(sh) = &self.shared else { return };
        debug_assert!(self.run.is_none(), "run scopes do not nest");
        self.scratch.clear();
        self.run = Some((run, Self::now_us(sh)));
    }

    /// Close the run scope. The tree is retained only if the run ranks
    /// among this lane's K slowest so far; otherwise its events are
    /// discarded (aggregates were already updated at each span exit).
    pub fn end_run(&mut self) {
        let Some(sh) = &self.shared else { return };
        let (run, start_us) = self.run.take().expect("end_run without begin_run");
        let dur_us = Self::now_us(sh).saturating_sub(start_us);
        if self.kept.len() < sh.slow_k {
            let events = std::mem::take(&mut self.scratch);
            self.kept.push(RunTree { run, start_us, dur_us, events });
            return;
        }
        let min = match self.kept.iter().enumerate().min_by_key(|(_, t)| t.dur_us) {
            Some((i, t)) if t.dur_us < dur_us => i,
            _ => {
                self.scratch.clear();
                return;
            }
        };
        // Swap buffers with the evicted tree so neither path reallocates.
        let slot = &mut self.kept[min];
        let recycled = std::mem::replace(&mut slot.events, std::mem::take(&mut self.scratch));
        slot.run = run;
        slot.start_us = start_us;
        slot.dur_us = dur_us;
        self.scratch = recycled;
        self.scratch.clear();
    }
}

impl Drop for SpanLane {
    fn drop(&mut self) {
        let Some(sh) = &self.shared else { return };
        debug_assert!(self.stack.is_empty(), "lane dropped with open spans");
        let mut kept = std::mem::take(&mut self.kept);
        kept.sort_by_key(|t| std::cmp::Reverse(t.dur_us));
        sh.lanes.lock().unwrap().push(LaneDump {
            tid: self.tid,
            name: std::mem::take(&mut self.name),
            outer: std::mem::take(&mut self.outer),
            runs: kept,
            dropped: self.dropped,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_is_inert() {
        let c = SpanCollector::disabled();
        assert!(!c.is_enabled());
        let mut lane = c.lane("w");
        lane.enter(PhaseId::SimStepCpu);
        lane.exit(PhaseId::SimStepCpu);
        lane.begin_run(0);
        lane.end_run();
        assert_eq!(c.time(PhaseId::GoldenPrep, || 42), 42);
        assert!(c.report().rows.is_empty());
        let t = c.trace();
        assert!(t.lanes.is_empty() && t.external.outer.is_empty());
    }

    #[test]
    fn nesting_attributes_self_time_to_the_right_phase() {
        let c = SpanCollector::enabled();
        let mut lane = c.lane("w");
        lane.enter(PhaseId::SimStepCpu);
        lane.enter(PhaseId::ConvergenceDiff);
        std::thread::sleep(std::time::Duration::from_millis(2));
        lane.exit(PhaseId::ConvergenceDiff);
        lane.exit(PhaseId::SimStepCpu);
        drop(lane);
        let rep = c.report();
        let sim = rep.rows.iter().find(|r| r.phase == PhaseId::SimStepCpu).unwrap();
        let conv = rep.rows.iter().find(|r| r.phase == PhaseId::ConvergenceDiff).unwrap();
        assert_eq!(sim.calls, 1);
        assert_eq!(conv.calls, 1);
        // The child's wall time is excluded from the parent's self time
        // but included in its total.
        assert!(sim.total_us >= conv.total_us);
        assert!(sim.self_us <= sim.total_us - conv.self_us + 1);
        assert!(conv.self_us >= 1_000, "slept ≥2ms inside the child span");
    }

    #[test]
    fn slowest_k_runs_are_retained_with_their_trees() {
        let c = SpanCollector::new(1024, 2);
        let mut lane = c.lane("w");
        // Three runs with increasing durations; K=2 keeps the last two.
        for (i, sleep_ms) in [(0u64, 0u64), (1, 3), (2, 6)] {
            lane.begin_run(i);
            lane.enter(PhaseId::SimStepCpu);
            if sleep_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
            }
            lane.exit(PhaseId::SimStepCpu);
            lane.end_run();
        }
        drop(lane);
        let t = c.trace();
        assert_eq!(t.lanes.len(), 1);
        let mut runs: Vec<u64> = t.lanes[0].runs.iter().map(|r| r.run).collect();
        runs.sort();
        assert_eq!(runs, vec![1, 2]);
        assert!(t.lanes[0].runs.iter().all(|r| !r.events.is_empty()));
        // Aggregates still cover all three runs.
        assert_eq!(c.report().calls(PhaseId::SimStepCpu), 3);
    }

    #[test]
    fn loose_span_buffer_is_bounded() {
        let c = SpanCollector::new(4, 1);
        let mut lane = c.lane("w");
        for _ in 0..10 {
            lane.enter(PhaseId::Schedule);
            lane.exit(PhaseId::Schedule);
        }
        drop(lane);
        let t = c.trace();
        assert_eq!(t.lanes[0].outer.len(), 4);
        assert_eq!(t.lanes[0].dropped, 6);
        // Aggregation is unaffected by retention bounds.
        assert_eq!(c.report().calls(PhaseId::Schedule), 10);
    }

    #[test]
    fn cancel_discards_the_span() {
        let c = SpanCollector::enabled();
        let mut lane = c.lane("w");
        lane.enter(PhaseId::Schedule);
        lane.cancel(PhaseId::Schedule);
        drop(lane);
        assert_eq!(c.report().calls(PhaseId::Schedule), 0);
        assert!(c.trace().lanes[0].outer.is_empty());
    }

    #[test]
    fn external_timing_lands_on_the_shared_track() {
        let c = SpanCollector::enabled();
        let v = c.time(PhaseId::GoldenPrep, || 7);
        assert_eq!(v, 7);
        let t = c.trace();
        assert_eq!(t.external.outer.len(), 1);
        assert_eq!(t.external.outer[0].phase, PhaseId::GoldenPrep);
        assert_eq!(c.report().calls(PhaseId::GoldenPrep), 1);
    }

    #[test]
    fn report_coverage_is_attributed_over_wall() {
        let c = SpanCollector::enabled();
        c.time(PhaseId::GoldenPrep, || std::thread::sleep(std::time::Duration::from_millis(5)));
        let rep = c.report();
        assert!(rep.wall_us >= 5_000);
        assert!(rep.self_total_us() >= 5_000);
        assert!(rep.coverage() > 0.0 && rep.coverage() <= 1.05);
    }
}
