//! # marvel-telemetry
//!
//! Campaign observability for the fault-injection framework: the paper's
//! evaluation runs millions of injection runs across worker fleets
//! (Fig. 2), and this crate is the measurement substrate those campaigns
//! report through. Dependency-free and at the bottom of the workspace
//! stack so every layer (CPU, accelerator, SoC, campaign driver, CLI) can
//! publish into it.
//!
//! Four pieces:
//!
//! * [`Registry`] — named atomic [`Counter`]s and fixed-bucket power-of-two
//!   [`Histogram`]s behind an `Arc`. A [`Registry::disabled`] registry
//!   hands out no-op handles whose hot path is a single branch, so
//!   instrumentation can stay compiled-in unconditionally.
//! * [`Scope`] — cheap hierarchical dotted metric names
//!   (`cpu.l1d.miss`, `campaign.worker3.runs`).
//! * [`FlightRecorder`] — a bounded ring buffer of typed, cycle-stamped
//!   [`Event`]s that an injection run carries; campaigns keep the dump
//!   only for runs that classify SDC/Crash, turning "bit 1234 flipped and
//!   something broke" into an ordered timeline of the fault's life.
//! * [`export`]/[`progress`] — JSONL/CSV artifact writers for registry
//!   snapshots and flight dumps (schema-versioned, see
//!   [`export::SCHEMA_VERSION`]), plus the live progress line
//!   (rate + ETA + running AVF ± margin) campaigns print.
//! * [`SpanCollector`]/[`SpanLane`] — marvel-spans: structured phase
//!   tracing across the campaign stack. Thread-local span stacks record
//!   enter/exit deltas per [`PhaseId`]; exporters render Chrome
//!   trace-event JSON (Perfetto) and the per-phase wall-time attribution
//!   table ([`trace_export`]).
//! * [`taint`]/[`pipeview`] — marvel-taint bookkeeping: the
//!   [`TaintTracer`] collects structure-to-structure propagation hops of
//!   an injected bit's shadow taint, and the [`PipeTracer`] renders
//!   per-cycle Konata pipeline traces for golden/faulty run pairs.
//!
//! Telemetry is strictly observational: nothing here feeds back into
//! simulation state, so enabling it cannot perturb classifications (the
//! root `telemetry_determinism` integration test enforces this).

pub mod export;
pub mod flight;
pub mod hist;
pub mod pipeview;
pub mod progress;
pub mod registry;
pub mod scope;
pub mod span;
pub mod taint;
pub mod trace_export;

pub use export::{
    append_jsonl_line, check_snapshot_version, json_string, render_csv, render_jsonl,
    render_snapshot_line, write_snapshot, SCHEMA_VERSION,
};
pub use flight::{Event, FlightDump, FlightRecorder, TimedEvent};
pub use hist::{HistSnapshot, Histogram};
pub use pipeview::{PipeRecord, PipeTracer};
pub use progress::ProgressMeter;
pub use registry::{Counter, Registry, Snapshot};
pub use scope::Scope;
pub use span::{
    LaneDump, PhaseId, PhaseReport, PhaseRow, RunTree, SpanCollector, SpanEvent, SpanLane, TraceDump,
};
pub use taint::{alu_taint, Attribution, TaintAluKind, TaintHop, TaintReport, TaintTracer};
pub use trace_export::{
    render_chrome_trace, render_phase_csv, render_phase_jsonl, render_phase_object, render_phase_table,
    render_prometheus, TRACE_SCHEMA_VERSION,
};
