//! The flight recorder: a bounded ring buffer of cycle-stamped events an
//! injection run carries, dumped only when the run turns out interesting.

use std::collections::VecDeque;

/// One thing that happened during an injection run. Variants follow the
/// life of the injected bit: armed → read/overwritten → (divergence →)
//  trap/halt → classified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The fault mask was applied to the target structure.
    FaultArmed { target: String, bit: u64, model: &'static str },
    /// The faulty storage was read before being overwritten — the fault
    /// is activated and may propagate.
    BitRead,
    /// The faulty storage was overwritten/refilled before any read — the
    /// fault is architecturally dead.
    BitOverwritten,
    /// The fault landed in an invalid/unused entry.
    InvalidEntry,
    /// First commit-stage divergence from the golden trace (HVF
    /// corruption onset); `seq` is the diverging commit sequence number.
    FirstDivergence { seq: u64 },
    /// A trap reached commit.
    Trap { tag: &'static str },
    /// The run was cut short by the early-termination optimisation.
    EarlyTerminated,
    /// The run's dirty state matched the golden run's at a checkpoint
    /// ladder rung — the fault is Masked and the tail was skipped.
    Converged,
    /// Final effect classification of the run.
    Classified { effect: &'static str },
    /// Taint crossed a structure boundary (marvel-taint propagation
    /// timeline; `cycle` on the [`TimedEvent`] is the crossing cycle).
    TaintHop { from: &'static str, to: &'static str },
    /// Taint became architecturally visible while resident in `structure`.
    TaintArch { structure: String },
    /// Taint never surfaced; it was masked/overwritten in `structure`.
    TaintMasked { structure: String },
    /// Free-form instrumentation point.
    Note { label: &'static str, value: u64 },
}

impl Event {
    /// Stable lower-snake tag used in exports.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::FaultArmed { .. } => "fault_armed",
            Event::BitRead => "bit_read",
            Event::BitOverwritten => "bit_overwritten",
            Event::InvalidEntry => "invalid_entry",
            Event::FirstDivergence { .. } => "first_divergence",
            Event::Trap { .. } => "trap",
            Event::EarlyTerminated => "early_terminated",
            Event::Converged => "converged",
            Event::Classified { .. } => "classified",
            Event::TaintHop { .. } => "taint_hop",
            Event::TaintArch { .. } => "taint_arch",
            Event::TaintMasked { .. } => "taint_masked",
            Event::Note { .. } => "note",
        }
    }

    /// Human-readable detail column.
    pub fn detail(&self) -> String {
        match self {
            Event::FaultArmed { target, bit, model } => format!("{model} fault, bit {bit} of {target}"),
            Event::BitRead => "faulty storage read (fault activated)".into(),
            Event::BitOverwritten => "faulty storage overwritten (fault dead)".into(),
            Event::InvalidEntry => "fault landed in an invalid entry".into(),
            Event::FirstDivergence { seq } => format!("commit stream diverges from golden at seq {seq}"),
            Event::Trap { tag } => format!("trap: {tag}"),
            Event::EarlyTerminated => "run cut short: outcome already known".into(),
            Event::Converged => "state converged with the golden run at a ladder rung".into(),
            Event::Classified { effect } => format!("final class: {effect}"),
            Event::TaintHop { from, to } => format!("taint propagated {from} -> {to}"),
            Event::TaintArch { structure } => {
                format!("taint reached architectural state from {structure}")
            }
            Event::TaintMasked { structure } => format!("taint masked in {structure}"),
            Event::Note { label, value } => format!("{label} = {value}"),
        }
    }

    fn json_fields(&self) -> String {
        match self {
            Event::FaultArmed { target, bit, model } => format!(
                r#","target":{},"bit":{bit},"model":"{model}""#,
                crate::export::json_string(target)
            ),
            Event::FirstDivergence { seq } => format!(r#","seq":{seq}"#),
            Event::Trap { tag } => format!(r#","trap":{}"#, crate::export::json_string(tag)),
            Event::Classified { effect } => format!(r#","effect":"{effect}""#),
            Event::TaintHop { from, to } => format!(
                r#","from":{},"to":{}"#,
                crate::export::json_string(from),
                crate::export::json_string(to)
            ),
            Event::TaintArch { structure } | Event::TaintMasked { structure } => {
                format!(r#","structure":{}"#, crate::export::json_string(structure))
            }
            Event::Note { label, value } => {
                format!(r#","label":{},"value":{value}"#, crate::export::json_string(label))
            }
            _ => String::new(),
        }
    }
}

/// An [`Event`] plus the system cycle it was observed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent {
    pub cycle: u64,
    pub event: Event,
}

impl TimedEvent {
    /// One JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"cycle":{},"event":"{}"{}}}"#,
            self.cycle,
            self.event.tag(),
            self.event.json_fields()
        )
    }
}

/// Bounded ring buffer of [`TimedEvent`]s carried by one injection run.
///
/// Capacity 0 (the [`FlightRecorder::disabled`] default) makes `record` a
/// single branch, so the recorder can be threaded through run loops
/// unconditionally. When full, the oldest events are dropped (`dropped`
/// counts them) — for crash forensics the *latest* events matter most.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    cap: usize,
    events: VecDeque<TimedEvent>,
    dropped: u64,
}

/// A finished recorder's timeline, detached from the run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightDump {
    pub events: Vec<TimedEvent>,
    pub dropped: u64,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder { cap: capacity, events: VecDeque::new(), dropped: 0 }
    }

    /// A recorder that records nothing.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder::default()
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.cap > 0
    }

    #[inline]
    pub fn record(&mut self, cycle: u64, event: Event) {
        if self.cap == 0 {
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TimedEvent { cycle, event });
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Detach the recorded timeline (the recorder is left empty).
    pub fn take(&mut self) -> FlightDump {
        FlightDump { events: self.events.drain(..).collect(), dropped: self.dropped }
    }
}

impl FlightDump {
    /// Human-readable timeline table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:>12}  {:<18} detail\n", "cycle", "event"));
        for e in &self.events {
            out.push_str(&format!("{:>12}  {:<18} {}\n", e.cycle, e.event.tag(), e.event.detail()));
        }
        if self.dropped > 0 {
            out.push_str(&format!("({} earlier events dropped by the ring buffer)\n", self.dropped));
        }
        out
    }

    /// One JSON array of event objects (single line, JSONL-friendly).
    pub fn to_json(&self) -> String {
        let evs: Vec<String> = self.events.iter().map(|e| e.to_json()).collect();
        format!(r#"{{"dropped":{},"events":[{}]}}"#, self.dropped, evs.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut fr = FlightRecorder::disabled();
        fr.record(1, Event::BitRead);
        assert!(fr.is_empty() && !fr.is_enabled());
    }

    #[test]
    fn ring_drops_oldest() {
        let mut fr = FlightRecorder::new(2);
        fr.record(1, Event::BitRead);
        fr.record(2, Event::BitOverwritten);
        fr.record(3, Event::EarlyTerminated);
        let d = fr.take();
        assert_eq!(d.dropped, 1);
        assert_eq!(d.events.len(), 2);
        assert_eq!(d.events[0].cycle, 2);
        assert_eq!(d.events[1].event, Event::EarlyTerminated);
    }

    #[test]
    fn json_shapes() {
        let mut fr = FlightRecorder::new(8);
        fr.record(10, Event::FaultArmed { target: "L1D".into(), bit: 42, model: "transient" });
        fr.record(20, Event::Trap { tag: "decode" });
        let d = fr.take();
        let j = d.to_json();
        assert!(j.starts_with(r#"{"dropped":0,"events":["#), "{j}");
        assert!(j.contains(r#""cycle":10,"event":"fault_armed","target":"L1D","bit":42"#), "{j}");
        assert!(j.contains(r#""trap":"decode""#), "{j}");
    }

    #[test]
    fn ring_wraparound_preserves_retained_timeline() {
        // An SDC/Crash forensics timeline pushed far past capacity must
        // evict strictly oldest-first and keep the retained suffix
        // intact, in order, and uncorrupted — the tail is what crash
        // diagnosis reads.
        let cap = 8;
        let mut fr = FlightRecorder::new(cap);
        fr.record(0, Event::FaultArmed { target: "ROB".into(), bit: 7, model: "transient" });
        for i in 1..=100u64 {
            fr.record(i * 10, Event::Note { label: "poll", value: i });
        }
        fr.record(2000, Event::FirstDivergence { seq: 4242 });
        fr.record(2001, Event::Trap { tag: "mem-fault" });
        fr.record(2002, Event::Classified { effect: "Crash" });
        let d = fr.take();

        assert_eq!(d.events.len(), cap);
        assert_eq!(d.dropped, (1 + 100 + 3 - cap) as u64);
        // Cycle stamps remain monotonic across the wrap.
        for w in d.events.windows(2) {
            assert!(w[0].cycle <= w[1].cycle, "ring reordered events: {:?}", d.events);
        }
        // The classification tail survives verbatim and in order.
        let n = d.events.len();
        assert_eq!(d.events[n - 3].event, Event::FirstDivergence { seq: 4242 });
        assert_eq!(d.events[n - 2].event, Event::Trap { tag: "mem-fault" });
        assert_eq!(d.events[n - 1].event, Event::Classified { effect: "Crash" });
        // The surviving poll events are the newest ones, contiguous.
        let polls: Vec<u64> = d
            .events
            .iter()
            .filter_map(|e| match e.event {
                Event::Note { value, .. } => Some(value),
                _ => None,
            })
            .collect();
        assert_eq!(polls, (96..=100).collect::<Vec<_>>());
    }

    #[test]
    fn taint_events_export_and_render() {
        let mut fr = FlightRecorder::new(8);
        fr.record(100, Event::TaintHop { from: "L1D", to: "LoadQueue" });
        fr.record(120, Event::TaintArch { structure: "ROB".into() });
        fr.record(121, Event::TaintMasked { structure: "StoreQueue".into() });
        let d = fr.take();
        let j = d.to_json();
        assert!(j.contains(r#""event":"taint_hop","from":"L1D","to":"LoadQueue""#), "{j}");
        assert!(j.contains(r#""event":"taint_arch","structure":"ROB""#), "{j}");
        assert!(j.contains(r#""event":"taint_masked","structure":"StoreQueue""#), "{j}");
        let text = d.render();
        assert!(text.contains("taint propagated L1D -> LoadQueue"), "{text}");
        assert!(text.contains("architectural state from ROB"), "{text}");
    }

    #[test]
    fn render_mentions_every_event() {
        let mut fr = FlightRecorder::new(8);
        fr.record(5, Event::FirstDivergence { seq: 99 });
        fr.record(6, Event::Classified { effect: "SDC" });
        let text = fr.take().render();
        assert!(text.contains("first_divergence") && text.contains("seq 99"), "{text}");
        assert!(text.contains("SDC"), "{text}");
    }
}
