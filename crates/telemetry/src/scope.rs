//! Hierarchical metric names.

use std::fmt;

/// A dotted-path namespace for metric names: `Scope::new("cpu").child("l1d")`
/// yields names like `cpu.l1d.miss` via [`Scope::metric`].
///
/// Scopes are plain strings under the hood; they exist so instrumentation
/// sites compose names structurally (worker index, accelerator index)
/// instead of formatting ad-hoc.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Scope {
    path: String,
}

impl Scope {
    /// The empty root scope: `root().metric("x")` is just `"x"`.
    pub fn root() -> Scope {
        Scope { path: String::new() }
    }

    pub fn new(name: &str) -> Scope {
        debug_assert!(!name.is_empty());
        Scope { path: name.to_string() }
    }

    /// A child scope: `Scope::new("campaign").child("worker3")`.
    pub fn child(&self, name: &str) -> Scope {
        if self.path.is_empty() {
            Scope::new(name)
        } else {
            Scope { path: format!("{}.{}", self.path, name) }
        }
    }

    /// `child` with a numeric suffix baked in: `indexed("worker", 3)` →
    /// `campaign.worker3`.
    pub fn indexed(&self, name: &str, idx: usize) -> Scope {
        self.child(&format!("{name}{idx}"))
    }

    /// Full metric name for a leaf within this scope.
    pub fn metric(&self, leaf: &str) -> String {
        if self.path.is_empty() {
            leaf.to_string()
        } else {
            format!("{}.{}", self.path, leaf)
        }
    }

    pub fn as_str(&self) -> &str {
        &self.path
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composes_dotted_paths() {
        let cpu = Scope::new("cpu");
        assert_eq!(cpu.metric("cycles"), "cpu.cycles");
        assert_eq!(cpu.child("l1d").metric("miss"), "cpu.l1d.miss");
        assert_eq!(Scope::new("campaign").indexed("worker", 3).metric("runs"), "campaign.worker3.runs");
    }

    #[test]
    fn root_scope_is_transparent() {
        assert_eq!(Scope::root().metric("x"), "x");
        assert_eq!(Scope::root().child("a").metric("b"), "a.b");
    }
}
