//! Artifact export: JSONL and CSV renderings of registry snapshots, plus
//! file helpers used by campaign harnesses to attach metrics to figures.

use crate::registry::Snapshot;
use std::io::Write;
use std::path::Path;

/// Minimal JSON string escaping (names are ASCII metric paths, but be
/// safe about quotes/backslashes/control bytes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a snapshot as JSONL: one object per metric, counters first,
/// both sections name-sorted (deterministic output for diffable
/// artifacts).
pub fn render_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        out.push_str(&format!(
            "{{\"type\":\"counter\",\"name\":{},\"value\":{value}}}\n",
            json_string(name)
        ));
    }
    for (name, h) in &snap.histograms {
        let buckets: Vec<String> =
            h.buckets.iter().map(|(le, n)| format!("{{\"le\":{le},\"count\":{n}}}")).collect();
        out.push_str(&format!(
            "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"mean\":{:.3},\"buckets\":[{}]}}\n",
            json_string(name),
            h.count,
            h.sum,
            h.mean(),
            buckets.join(",")
        ));
    }
    out
}

/// Render a snapshot as CSV (`name,kind,value,count,sum`): counters carry
/// `value`, histograms carry `count`/`sum`.
pub fn render_csv(snap: &Snapshot) -> String {
    let mut out = String::from("name,kind,value,count,sum\n");
    for (name, value) in &snap.counters {
        out.push_str(&format!("{name},counter,{value},,\n"));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!("{name},histogram,,{},{}\n", h.count, h.sum));
    }
    out
}

/// Write a snapshot to `path`, picking the format from the extension
/// (`.csv` → CSV, anything else → JSONL). Parent directories are created.
pub fn write_snapshot(snap: &Snapshot, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let body =
        if path.extension().is_some_and(|e| e == "csv") { render_csv(snap) } else { render_jsonl(snap) };
    let mut f = std::fs::File::create(path)?;
    f.write_all(body.as_bytes())
}

/// Append one pre-rendered JSONL line to `path` (forensics dumps are
/// written incrementally, one run per line). Parent directories are
/// created.
pub fn append_jsonl_line(path: &Path, line: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(f, "{line}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let reg = Registry::new();
        reg.publish("campaign.runs", 100);
        reg.publish("cpu.l1d.miss", 7);
        let h = reg.histogram("campaign.run_cycles").unwrap();
        h.record(100);
        h.record(200);
        reg.snapshot()
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let text = render_jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"type\":\"counter\",\"name\":\"campaign.runs\""));
        assert!(lines[2].contains("\"type\":\"histogram\""));
        assert!(lines[2].contains("\"count\":2,\"sum\":300"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let text = render_csv(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "name,kind,value,count,sum");
        assert_eq!(lines[1], "campaign.runs,counter,100,,");
        assert_eq!(lines[3], "campaign.run_cycles,histogram,,2,300");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), r#""a\"b\\c\n""#);
    }

    #[test]
    fn file_roundtrip_both_formats() {
        let dir = std::env::temp_dir().join(format!("marvel-telemetry-test-{}", std::process::id()));
        let snap = sample();
        let jpath = dir.join("snap.jsonl");
        let cpath = dir.join("snap.csv");
        write_snapshot(&snap, &jpath).unwrap();
        write_snapshot(&snap, &cpath).unwrap();
        assert_eq!(std::fs::read_to_string(&jpath).unwrap(), render_jsonl(&snap));
        assert!(std::fs::read_to_string(&cpath).unwrap().starts_with("name,kind"));
        append_jsonl_line(&dir.join("f.jsonl"), "{}").unwrap();
        append_jsonl_line(&dir.join("f.jsonl"), "{}").unwrap();
        assert_eq!(std::fs::read_to_string(dir.join("f.jsonl")).unwrap(), "{}\n{}\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
