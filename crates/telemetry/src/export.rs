//! Artifact export: JSONL and CSV renderings of registry snapshots, plus
//! file helpers used by campaign harnesses to attach metrics to figures.

use crate::registry::Snapshot;
use std::io::Write;
use std::path::Path;

/// Version of the snapshot export schema. Bump when the shape of the
/// JSONL objects or CSV columns changes; readers must reject snapshots
/// with a version they do not understand instead of misparsing them.
pub const SCHEMA_VERSION: u32 = 1;

/// Minimal JSON string escaping (names are ASCII metric paths, but be
/// safe about quotes/backslashes/control bytes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a snapshot as JSONL: one object per metric, counters first,
/// both sections name-sorted (deterministic output for diffable
/// artifacts).
pub fn render_jsonl(snap: &Snapshot) -> String {
    let mut out = format!("{{\"type\":\"schema\",\"schema_version\":{SCHEMA_VERSION}}}\n");
    for (name, value) in &snap.counters {
        out.push_str(&format!(
            "{{\"type\":\"counter\",\"name\":{},\"value\":{value}}}\n",
            json_string(name)
        ));
    }
    for (name, h) in &snap.histograms {
        let buckets: Vec<String> =
            h.buckets.iter().map(|(le, n)| format!("{{\"le\":{le},\"count\":{n}}}")).collect();
        out.push_str(&format!(
            "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"mean\":{:.3},\"buckets\":[{}]}}\n",
            json_string(name),
            h.count,
            h.sum,
            h.mean(),
            buckets.join(",")
        ));
    }
    out
}

/// Render a snapshot as one self-describing JSON line for streaming
/// consumers (the campaign service's `METRICS` response, watch streams):
/// counters as a name→value object, histograms as name→{count,sum,mean},
/// both name-sorted like [`render_jsonl`]. Unlike the multi-line
/// renderings this is a protocol message, so the schema version rides
/// inline rather than as a separate header line.
pub fn render_snapshot_line(snap: &Snapshot) -> String {
    let counters: Vec<String> =
        snap.counters.iter().map(|(name, v)| format!("{}:{v}", json_string(name))).collect();
    let hists: Vec<String> = snap
        .histograms
        .iter()
        .map(|(name, h)| {
            format!(
                "{}:{{\"count\":{},\"sum\":{},\"mean\":{:.3}}}",
                json_string(name),
                h.count,
                h.sum,
                h.mean()
            )
        })
        .collect();
    format!(
        "{{\"type\":\"metrics\",\"schema_version\":{SCHEMA_VERSION},\"counters\":{{{}}},\"histograms\":{{{}}}}}",
        counters.join(","),
        hists.join(",")
    )
}

/// Render a snapshot as CSV (`name,kind,value,count,sum`): counters carry
/// `value`, histograms carry `count`/`sum`.
pub fn render_csv(snap: &Snapshot) -> String {
    let mut out = format!("# schema_version={SCHEMA_VERSION}\nname,kind,value,count,sum\n");
    for (name, value) in &snap.counters {
        out.push_str(&format!("{name},counter,{value},,\n"));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!("{name},histogram,,{},{}\n", h.count, h.sum));
    }
    out
}

/// Write a snapshot to `path`, picking the format from the extension
/// (`.csv` → CSV, anything else → JSONL). Parent directories are created.
pub fn write_snapshot(snap: &Snapshot, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let body =
        if path.extension().is_some_and(|e| e == "csv") { render_csv(snap) } else { render_jsonl(snap) };
    let mut f = std::fs::File::create(path)?;
    f.write_all(body.as_bytes())
}

/// Validate the schema header of an exported snapshot (either format)
/// on read-back. Returns the version, or an error for a missing header
/// or a version this reader does not understand — downstream scripts
/// must not guess at column meanings across schema bumps.
pub fn check_snapshot_version(text: &str) -> Result<u32, String> {
    let first = text.lines().next().unwrap_or("");
    let version = if let Some(rest) = first.strip_prefix("# schema_version=") {
        rest.trim().parse::<u32>().map_err(|_| format!("malformed CSV schema header: {first:?}"))?
    } else if first.starts_with('{') && first.contains("\"type\":\"schema\"") {
        let key = "\"schema_version\":";
        let at = first.find(key).ok_or_else(|| format!("schema line lacks version: {first:?}"))?;
        let digits: String =
            first[at + key.len()..].chars().take_while(|c| c.is_ascii_digit()).collect();
        digits.parse::<u32>().map_err(|_| format!("malformed JSONL schema header: {first:?}"))?
    } else {
        return Err(format!("snapshot has no schema_version header (first line: {first:?})"));
    };
    if version != SCHEMA_VERSION {
        return Err(format!(
            "unknown snapshot schema_version {version} (this reader understands {SCHEMA_VERSION})"
        ));
    }
    Ok(version)
}

/// Append one pre-rendered JSONL line to `path` (forensics dumps are
/// written incrementally, one run per line). Parent directories are
/// created.
pub fn append_jsonl_line(path: &Path, line: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(f, "{line}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let reg = Registry::new();
        reg.publish("campaign.runs", 100);
        reg.publish("cpu.l1d.miss", 7);
        let h = reg.histogram("campaign.run_cycles").unwrap();
        h.record(100);
        h.record(200);
        reg.snapshot()
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let text = render_jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], format!("{{\"type\":\"schema\",\"schema_version\":{SCHEMA_VERSION}}}"));
        assert!(lines[1].starts_with("{\"type\":\"counter\",\"name\":\"campaign.runs\""));
        assert!(lines[3].contains("\"type\":\"histogram\""));
        assert!(lines[3].contains("\"count\":2,\"sum\":300"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let text = render_csv(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], format!("# schema_version={SCHEMA_VERSION}"));
        assert_eq!(lines[1], "name,kind,value,count,sum");
        assert_eq!(lines[2], "campaign.runs,counter,100,,");
        assert_eq!(lines[4], "campaign.run_cycles,histogram,,2,300");
    }

    #[test]
    fn readback_accepts_current_schema_both_formats() {
        let snap = sample();
        assert_eq!(check_snapshot_version(&render_jsonl(&snap)), Ok(SCHEMA_VERSION));
        assert_eq!(check_snapshot_version(&render_csv(&snap)), Ok(SCHEMA_VERSION));
    }

    #[test]
    fn readback_rejects_unknown_and_missing_versions() {
        // A snapshot written by a future (or corrupted) exporter must be
        // rejected, not misparsed.
        let future_jsonl = "{\"type\":\"schema\",\"schema_version\":9999}\n";
        let err = check_snapshot_version(future_jsonl).unwrap_err();
        assert!(err.contains("unknown snapshot schema_version 9999"), "{err}");

        let future_csv = "# schema_version=42\nname,kind,value,count,sum\n";
        let err = check_snapshot_version(future_csv).unwrap_err();
        assert!(err.contains("42"), "{err}");

        // Pre-versioning exports have no header at all.
        let legacy = "name,kind,value,count,sum\nx,counter,1,,\n";
        assert!(check_snapshot_version(legacy).unwrap_err().contains("no schema_version"));
        assert!(check_snapshot_version("").is_err());
        assert!(check_snapshot_version("# schema_version=banana\n").is_err());
    }

    #[test]
    fn snapshot_line_is_single_self_describing_json() {
        let line = render_snapshot_line(&sample());
        assert!(!line.contains('\n'), "{line}");
        assert!(line.starts_with(&format!(
            "{{\"type\":\"metrics\",\"schema_version\":{SCHEMA_VERSION},\"counters\":{{"
        )));
        assert!(line.contains("\"campaign.runs\":100"), "{line}");
        assert!(line.contains("\"campaign.run_cycles\":{\"count\":2,\"sum\":300"), "{line}");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), r#""a\"b\\c\n""#);
    }

    #[test]
    fn file_roundtrip_both_formats() {
        let dir = std::env::temp_dir().join(format!("marvel-telemetry-test-{}", std::process::id()));
        let snap = sample();
        let jpath = dir.join("snap.jsonl");
        let cpath = dir.join("snap.csv");
        write_snapshot(&snap, &jpath).unwrap();
        write_snapshot(&snap, &cpath).unwrap();
        assert_eq!(std::fs::read_to_string(&jpath).unwrap(), render_jsonl(&snap));
        assert!(std::fs::read_to_string(&cpath)
            .unwrap()
            .starts_with(&format!("# schema_version={SCHEMA_VERSION}\nname,kind")));
        append_jsonl_line(&dir.join("f.jsonl"), "{}").unwrap();
        append_jsonl_line(&dir.join("f.jsonl"), "{}").unwrap();
        assert_eq!(std::fs::read_to_string(dir.join("f.jsonl")).unwrap(), "{}\n{}\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
