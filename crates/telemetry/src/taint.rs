//! Taint propagation bookkeeping for `marvel-taint`.
//!
//! The simulator layers (CPU core, caches, accelerator engine, DMA)
//! carry shadow taint bits alongside architectural data; whenever taint
//! crosses a structure boundary they report the hop here. The tracer
//! keeps a compact, deduplicated structure-to-structure timeline plus
//! the two facts campaign attribution needs: where the tainted value
//! first became architecturally visible, and where it was last resident
//! (the masking site when it never surfaced).
//!
//! Everything in this module is pure bookkeeping — no simulator types,
//! so both `marvel-cpu` and `marvel-accel` can depend on it.

/// One structure-to-structure taint crossing, stamped with the cycle of
/// its *first* occurrence (repeat crossings of the same edge are counted
/// but not re-recorded — propagation timelines stay bounded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintHop {
    pub cycle: u64,
    pub from: &'static str,
    pub to: &'static str,
}

/// Where a campaign run's injected bit ended up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribution {
    /// True if the taint became architecturally visible (committed
    /// result, drained store, device write, DMA-out).
    pub reached_arch: bool,
    /// Structure the fault was resident in when it first reached
    /// architectural state, or where it was masked/overwritten.
    pub structure: String,
    /// Cycle of first architectural reach, or of the last hop seen.
    pub cycle: u64,
    /// Number of distinct structure-to-structure edges taint crossed.
    pub hops: usize,
}

/// Per-run taint event collector. One lives in the CPU core's taint
/// plane and one in each accelerator; [`TaintReport`]s merge them.
#[derive(Debug, Clone)]
pub struct TaintTracer {
    seed: String,
    hops: Vec<TaintHop>,
    cap: usize,
    /// Edges seen after `cap` distinct ones were already recorded.
    dropped: u64,
    first_arch: Option<(u64, &'static str)>,
    last_loc: Option<(u64, &'static str)>,
}

impl TaintTracer {
    /// `seed` names the structure the fault was injected into.
    pub fn new(seed: impl Into<String>) -> TaintTracer {
        TaintTracer {
            seed: seed.into(),
            hops: Vec::new(),
            cap: 64,
            dropped: 0,
            first_arch: None,
            last_loc: None,
        }
    }

    /// Record taint crossing from one structure to another. Only the
    /// first occurrence of each `(from, to)` edge is kept.
    pub fn hop(&mut self, cycle: u64, from: &'static str, to: &'static str) {
        self.last_loc = Some((cycle, to));
        if self.hops.iter().any(|h| h.from == from && h.to == to) {
            return;
        }
        if self.hops.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.hops.push(TaintHop { cycle, from, to });
    }

    /// Record the taint becoming architecturally visible while resident
    /// in `structure`. Only the first reach is kept.
    pub fn arch_reach(&mut self, cycle: u64, structure: &'static str) {
        if self.first_arch.is_none() {
            self.first_arch = Some((cycle, structure));
        }
    }

    pub fn reached_arch(&self) -> bool {
        self.first_arch.is_some()
    }

    /// Snapshot the tracer into an owned report.
    pub fn report(&self) -> TaintReport {
        TaintReport {
            seed: self.seed.clone(),
            hops: self.hops.clone(),
            dropped: self.dropped,
            first_arch: self.first_arch.map(|(c, s)| (c, s.to_string())),
            last_loc: self.last_loc.map(|(c, s)| (c, s.to_string())),
        }
    }
}

/// Owned snapshot of one or more [`TaintTracer`]s, merged per run.
#[derive(Debug, Clone, Default)]
pub struct TaintReport {
    pub seed: String,
    pub hops: Vec<TaintHop>,
    pub dropped: u64,
    pub first_arch: Option<(u64, String)>,
    pub last_loc: Option<(u64, String)>,
}

impl TaintReport {
    /// Merge another tracer's report (e.g. an accelerator's) into this
    /// one. The earliest architectural reach wins; the latest last-seen
    /// location wins.
    pub fn absorb(&mut self, other: TaintReport) {
        if self.seed.is_empty() {
            self.seed = other.seed;
        }
        for h in other.hops {
            if !self.hops.iter().any(|e| e.from == h.from && e.to == h.to) {
                self.hops.push(h);
            }
        }
        self.dropped += other.dropped;
        self.first_arch = match (self.first_arch.take(), other.first_arch) {
            (Some(a), Some(b)) => Some(if b.0 < a.0 { b } else { a }),
            (a, b) => a.or(b),
        };
        self.last_loc = match (self.last_loc.take(), other.last_loc) {
            (Some(a), Some(b)) => Some(if b.0 > a.0 { b } else { a }),
            (a, b) => a.or(b),
        };
    }

    /// Collapse the report into the campaign-level attribution record.
    pub fn attribution(&self) -> Attribution {
        match &self.first_arch {
            Some((cycle, s)) => Attribution {
                reached_arch: true,
                structure: s.clone(),
                cycle: *cycle,
                hops: self.hops.len(),
            },
            None => {
                // Never surfaced: attribute the masking to wherever the
                // taint was last resident (the seed structure if it
                // never left).
                let (cycle, structure) = self.last_loc.clone().unwrap_or((0, self.seed.clone()));
                Attribution { reached_arch: false, structure, cycle, hops: self.hops.len() }
            }
        }
    }
}

/// Taint mask transfer function for two-operand ALU ops, shared by the
/// CPU core and the accelerator FU model. `kind` is a coarse opcode
/// class so this crate stays ISA-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintAluKind {
    /// Bit-parallel ops (and/or/xor/mov): taint stays in place.
    Bitwise,
    /// Carry-propagating ops (add/sub): taint spreads to all bits at or
    /// above the lowest tainted input bit.
    Arith,
    /// Left shift by `b & 63` when the amount operand is untainted.
    ShiftLeft,
    /// Right shift (logical or arithmetic) by `b & 63`, untainted amount.
    ShiftRight,
    /// Everything else (mul/div/compares/float): any tainted input bit
    /// taints the whole result.
    Wide,
}

/// Conservative taint transfer: `ta`/`tb` are the operand taint masks,
/// `b` the runtime second operand (needed for shift amounts).
pub fn alu_taint(kind: TaintAluKind, ta: u64, tb: u64, b: u64) -> u64 {
    let t = ta | tb;
    if t == 0 {
        return 0;
    }
    match kind {
        TaintAluKind::Bitwise => t,
        TaintAluKind::Arith => !0u64 << t.trailing_zeros().min(63),
        TaintAluKind::ShiftLeft => {
            if tb != 0 {
                !0
            } else {
                ta << (b & 63)
            }
        }
        TaintAluKind::ShiftRight => {
            if tb != 0 {
                !0
            } else {
                // Arithmetic shifts replicate the (possibly tainted)
                // sign bit; keep it tainted conservatively.
                let mut m = ta >> (b & 63);
                if ta & (1 << 63) != 0 {
                    m |= !(!0u64 >> (b & 63));
                }
                m
            }
        }
        TaintAluKind::Wide => !0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_dedupe_and_stamp_first_cycle() {
        let mut t = TaintTracer::new("L1D");
        t.hop(10, "L1D", "LoadQueue");
        t.hop(20, "L1D", "LoadQueue");
        t.hop(30, "LoadQueue", "ROB");
        let r = t.report();
        assert_eq!(r.hops.len(), 2);
        assert_eq!(r.hops[0], TaintHop { cycle: 10, from: "L1D", to: "LoadQueue" });
        assert_eq!(r.hops[1].cycle, 30);
    }

    #[test]
    fn hop_cap_counts_drops() {
        let mut t = TaintTracer::new("x");
        t.cap = 2;
        t.hop(1, "a", "b");
        t.hop(2, "b", "c");
        t.hop(3, "c", "d");
        t.hop(4, "c", "d"); // dup of an unrecorded edge still drops
        let r = t.report();
        assert_eq!(r.hops.len(), 2);
        assert_eq!(r.dropped, 2);
    }

    #[test]
    fn attribution_reached_arch() {
        let mut t = TaintTracer::new("PhysRegFile(Int)");
        t.hop(5, "PhysRegFile(Int)", "ROB");
        t.arch_reach(9, "ROB");
        t.arch_reach(50, "StoreQueue"); // later reach ignored
        let a = t.report().attribution();
        assert!(a.reached_arch);
        assert_eq!(a.structure, "ROB");
        assert_eq!(a.cycle, 9);
        assert_eq!(a.hops, 1);
    }

    #[test]
    fn attribution_masked_at_seed_when_taint_never_moved() {
        let t = TaintTracer::new("L1I");
        let a = t.report().attribution();
        assert!(!a.reached_arch);
        assert_eq!(a.structure, "L1I");
        assert_eq!(a.hops, 0);
    }

    #[test]
    fn attribution_masked_at_last_location() {
        let mut t = TaintTracer::new("L1D");
        t.hop(10, "L1D", "LoadQueue");
        t.hop(12, "LoadQueue", "ROB");
        let a = t.report().attribution();
        assert!(!a.reached_arch);
        assert_eq!(a.structure, "ROB");
        assert_eq!(a.cycle, 12);
    }

    #[test]
    fn reports_merge_earliest_arch_reach() {
        let mut cpu = TaintTracer::new("SPM[0.0]");
        cpu.arch_reach(100, "ROB");
        let mut acc = TaintTracer::new("SPM[0.0]");
        acc.hop(3, "SPM", "FU");
        acc.arch_reach(40, "SPM");
        let mut r = cpu.report();
        r.absorb(acc.report());
        let a = r.attribution();
        assert_eq!(a.structure, "SPM");
        assert_eq!(a.cycle, 40);
        assert_eq!(r.hops.len(), 1);
    }

    #[test]
    fn alu_taint_transfer() {
        // Untainted inputs propagate nothing regardless of kind.
        for k in [
            TaintAluKind::Bitwise,
            TaintAluKind::Arith,
            TaintAluKind::ShiftLeft,
            TaintAluKind::ShiftRight,
            TaintAluKind::Wide,
        ] {
            assert_eq!(alu_taint(k, 0, 0, 7), 0);
        }
        assert_eq!(alu_taint(TaintAluKind::Bitwise, 0b1010, 0b0100, 0), 0b1110);
        // Carry spread: everything at or above bit 2.
        assert_eq!(alu_taint(TaintAluKind::Arith, 0b100, 0, 0), !0u64 << 2);
        assert_eq!(alu_taint(TaintAluKind::ShiftLeft, 0b1, 0, 4), 0b1_0000);
        assert_eq!(alu_taint(TaintAluKind::ShiftRight, 0b1_0000, 0, 4), 0b1);
        // Tainted shift amount poisons the whole result.
        assert_eq!(alu_taint(TaintAluKind::ShiftLeft, 0b1, 0b1, 4), !0);
        // Arithmetic-right of a tainted sign bit keeps the top tainted.
        let m = alu_taint(TaintAluKind::ShiftRight, 1 << 63, 0, 8);
        assert_eq!(m, !(!0u64 >> 8) | (1 << 55));
        assert_eq!(alu_taint(TaintAluKind::Wide, 1, 0, 0), !0);
    }
}
