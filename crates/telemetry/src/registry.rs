//! The metric registry: named atomic counters and histograms.

use crate::hist::{HistSnapshot, Histogram};
use crate::scope::Scope;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shared, thread-safe metric registry.
///
/// Cloning is cheap (`Arc`); a clone sees the same metrics. A registry
/// built with [`Registry::disabled`] hands out no-op [`Counter`]s and
/// never materialises anything — instrumentation sites can therefore call
/// unconditionally and stay off the profile when observability is off.
///
/// Metric *registration* (`counter`/`histogram`) takes a lock and is meant
/// for setup paths; the returned handles are lock-free on the hot path.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// Handle to one registered counter. `add`/`inc` are a branch plus a
/// relaxed `fetch_add`; on a disabled registry they are just the branch.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A no-op counter not attached to any registry.
    pub fn noop() -> Counter {
        Counter { cell: None }
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrite the value (gauge-style publish).
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.store(v, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.cell.as_ref().map(|c| c.load(Ordering::Relaxed)).unwrap_or(0)
    }
}

/// Point-in-time view of every metric in a registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub histograms: Vec<(String, HistSnapshot)>,
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Registry {
        Registry { inner: Some(Arc::new(Inner::default())) }
    }

    /// A registry whose handles are all no-ops (the default).
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register (or look up) a counter by full metric name.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter::noop(),
            Some(inner) => {
                let mut map = inner.counters.lock().unwrap();
                let cell = map.entry(name.to_string()).or_default().clone();
                Counter { cell: Some(cell) }
            }
        }
    }

    /// Register (or look up) a counter under `scope`.
    pub fn scoped_counter(&self, scope: &Scope, leaf: &str) -> Counter {
        if self.inner.is_none() {
            return Counter::noop();
        }
        self.counter(&scope.metric(leaf))
    }

    /// Register (or look up) a histogram by full metric name. Returns
    /// `None` on a disabled registry (record through the `Option` with
    /// `if let` or keep the handle in instrumentation structs).
    pub fn histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        let inner = self.inner.as_ref()?;
        let mut map = inner.histograms.lock().unwrap();
        Some(map.entry(name.to_string()).or_default().clone())
    }

    /// Gauge-style publish: set counter `name` to `value`, registering it
    /// if needed. Intended for end-of-run stat exports.
    pub fn publish(&self, name: &str, value: u64) {
        if self.inner.is_some() {
            self.counter(name).set(value);
        }
    }

    /// `publish` under a scope.
    pub fn publish_scoped(&self, scope: &Scope, leaf: &str, value: u64) {
        if self.inner.is_some() {
            self.publish(&scope.metric(leaf), value);
        }
    }

    /// Snapshot every metric (sorted by name; `BTreeMap` keeps this
    /// deterministic across runs).
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms =
            inner.histograms.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.snapshot())).collect();
        Snapshot { counters, histograms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_register_and_accumulate() {
        let reg = Registry::new();
        let c = reg.counter("campaign.runs");
        c.add(3);
        c.inc();
        // Second handle to the same name sees the same cell.
        assert_eq!(reg.counter("campaign.runs").get(), 4);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("campaign.runs".to_string(), 4)]);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        let c = reg.counter("x");
        c.add(10);
        assert_eq!(c.get(), 0);
        assert!(reg.histogram("h").is_none());
        reg.publish("y", 7);
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
        assert!(!reg.is_enabled());
    }

    #[test]
    fn concurrent_updates_from_clones() {
        let reg = Registry::new();
        let c = reg.counter("n");
        thread::scope(|s| {
            for _ in 0..8 {
                let reg = reg.clone();
                s.spawn(move || {
                    let c = reg.counter("n");
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let reg = Registry::new();
        reg.publish("b", 2);
        reg.publish("a", 1);
        reg.histogram("z").unwrap().record(5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].0, "a");
        assert_eq!(snap.counters[1].0, "b");
        assert_eq!(snap.histograms[0].0, "z");
    }

    #[test]
    fn scoped_helpers() {
        let reg = Registry::new();
        let cpu = Scope::new("cpu");
        reg.scoped_counter(&cpu, "cycles").add(9);
        reg.publish_scoped(&cpu.child("l1d"), "miss", 3);
        let snap = reg.snapshot();
        let names: Vec<_> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["cpu.cycles", "cpu.l1d.miss"]);
    }
}
