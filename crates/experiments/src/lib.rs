//! # marvel-experiments
//!
//! Shared drivers behind the per-table/figure reproduction harnesses
//! (`cargo bench -p marvel-experiments` regenerates every table and
//! figure of the paper's evaluation).
//!
//! Environment knobs:
//!
//! * `MARVEL_FAULTS` — faults per (structure × benchmark × ISA) cell
//!   (default 32 — sized for a single-core CI box; the paper uses 1000 ≈ 3% margin @ 95%).
//! * `MARVEL_BENCHES` — comma-separated benchmark subset.
//! * `MARVEL_WORKERS` — worker threads (default: all cores).
//!
//! Results are printed as the paper's rows/series and mirrored as CSV
//! under `results/` at the workspace root.

use marvel_core::{run_campaign, CampaignConfig, CampaignResult, FaultKind, Golden, Target};
use marvel_cpu::CoreConfig;
use marvel_ir::assemble;
use marvel_isa::Isa;
use marvel_soc::System;
use marvel_workloads::mibench;
use std::io::Write;

/// Max cycles for golden runs (fault-free).
pub const GOLDEN_BUDGET: u64 = 80_000_000;

/// Campaign configuration from the environment.
pub fn config() -> CampaignConfig {
    let n_faults = std::env::var("MARVEL_FAULTS").ok().and_then(|v| v.parse().ok()).unwrap_or(32);
    let workers = std::env::var("MARVEL_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    CampaignConfig { n_faults, workers, ..Default::default() }
}

/// Benchmark subset from the environment (default: the full suite).
pub fn benches() -> Vec<&'static str> {
    match std::env::var("MARVEL_BENCHES") {
        Ok(s) => {
            mibench::NAMES.iter().copied().filter(|n| s.split(',').any(|x| x.trim() == *n)).collect()
        }
        Err(_) => mibench::NAMES.to_vec(),
    }
}

/// Build and checkpoint a benchmark on an ISA (optionally with a
/// non-default integer PRF size).
pub fn cpu_golden(bench: &str, isa: Isa, int_prf: Option<usize>) -> Golden {
    let m = mibench::build(bench);
    let bin = assemble(&m, isa).unwrap_or_else(|e| panic!("{bench}/{isa}: {e}"));
    let cfg = match int_prf {
        Some(n) => CoreConfig::with_int_prf(isa, n),
        None => CoreConfig::table2(isa),
    };
    let mut sys = System::new(cfg);
    sys.load_binary(&bin);
    Golden::prepare(sys, GOLDEN_BUDGET).unwrap_or_else(|e| panic!("{bench}/{isa}: {e}"))
}

/// Which scalar a figure extracts from a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    TotalAvf,
    SdcAvf,
    CrashAvf,
}

impl Metric {
    pub fn of(self, r: &CampaignResult) -> f64 {
        match self {
            Metric::TotalAvf => r.avf(),
            Metric::SdcAvf => r.sdc_avf(),
            Metric::CrashAvf => r.crash_avf(),
        }
    }
}

/// A figure as (benchmark × ISA) percentages plus the weighted-AVF row.
pub struct FigTable {
    pub title: String,
    pub isas: Vec<Isa>,
    /// (benchmark, per-ISA values in percent).
    pub rows: Vec<(String, Vec<f64>)>,
    /// Weighted AVF per ISA, in percent.
    pub wavf: Vec<f64>,
    pub margin_pct: f64,
}

impl FigTable {
    /// Render as the paper's series.
    pub fn render(&self) -> String {
        let mut s = format!("== {} ==\n", self.title);
        s.push_str(&format!("{:<16}", "benchmark"));
        for isa in &self.isas {
            s.push_str(&format!("{:>10}", isa.name()));
        }
        s.push('\n');
        for (name, vals) in &self.rows {
            s.push_str(&format!("{name:<16}"));
            for v in vals {
                s.push_str(&format!("{v:>9.1}%"));
            }
            s.push('\n');
        }
        s.push_str(&format!("{:<16}", "wAVF"));
        for v in &self.wavf {
            s.push_str(&format!("{v:>9.1}%"));
        }
        s.push_str(&format!("\n(±{:.1}% @95%)\n", self.margin_pct));
        s
    }

    /// Save as CSV under `results/` at the workspace root.
    pub fn save_csv(&self, file: &str) {
        let dir = results_dir();
        let path = dir.join(file);
        let mut out = String::new();
        out.push_str("benchmark");
        for isa in &self.isas {
            out.push_str(&format!(",{}", isa.name()));
        }
        out.push('\n');
        for (name, vals) in &self.rows {
            out.push_str(name);
            for v in vals {
                out.push_str(&format!(",{v:.3}"));
            }
            out.push('\n');
        }
        out.push_str("wAVF");
        for v in &self.wavf {
            out.push_str(&format!(",{v:.3}"));
        }
        out.push('\n');
        std::fs::write(&path, out).unwrap_or_else(|e| panic!("writing {path:?}: {e}"));
        println!("[saved {path:?}]");
    }
}

/// Workspace-root `results/` directory.
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Run the standard per-benchmark × per-ISA campaign for one structure —
/// the driver behind Figs. 4–13.
pub fn avf_figure(title: &str, target: Target, kind: FaultKind, metric: Metric) -> FigTable {
    let cc = CampaignConfig { kind, ..config() };
    let isas = Isa::ALL.to_vec();
    let mut rows = Vec::new();
    let mut per_isa: Vec<Vec<(f64, f64)>> = vec![Vec::new(); isas.len()];
    for bench in benches() {
        let mut vals = Vec::new();
        for (k, &isa) in isas.iter().enumerate() {
            let golden = cpu_golden(bench, isa, None);
            let res = run_campaign(&golden, target, &cc);
            let v = metric.of(&res);
            vals.push(v * 100.0);
            per_isa[k].push((v, golden.exec_cycles as f64));
            eprintln!(
                "  [{bench}/{isa}] {}: avf={:.1}% sdc={:.1}% crash={:.1}% early={:.0}%",
                target.name(),
                res.avf() * 100.0,
                res.sdc_avf() * 100.0,
                res.crash_avf() * 100.0,
                res.early_termination_rate() * 100.0
            );
        }
        rows.push((bench.to_string(), vals));
    }
    let wavf = per_isa.iter().map(|v| marvel_core::weighted_avf(v) * 100.0).collect();
    let margin_pct = marvel_core::error_margin(cc.n_faults, u64::MAX, cc.confidence) * 100.0;
    FigTable { title: title.to_string(), isas, rows, wavf, margin_pct }
}

/// Pretty-print a header for a harness.
pub fn banner(name: &str, what: &str) {
    println!("\n================================================================");
    println!("{name} — {what}");
    println!("faults/cell = {} (MARVEL_FAULTS to change; paper used 1000)", config().n_faults);
    println!("================================================================");
    let _ = std::io::stdout().flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults() {
        let c = config();
        assert!(c.n_faults > 0);
        assert_eq!(c.kind, FaultKind::Transient);
    }

    #[test]
    fn benches_default_full_suite() {
        assert_eq!(benches().len(), 15);
    }

    #[test]
    fn figtable_renders_and_saves() {
        let t = FigTable {
            title: "test".into(),
            isas: Isa::ALL.to_vec(),
            rows: vec![("x".into(), vec![1.0, 2.0, 3.0])],
            wavf: vec![1.0, 2.0, 3.0],
            margin_pct: 5.0,
        };
        let s = t.render();
        assert!(s.contains("wAVF"));
        t.save_csv("_test.csv");
        assert!(results_dir().join("_test.csv").exists());
        let _ = std::fs::remove_file(results_dir().join("_test.csv"));
    }
}
