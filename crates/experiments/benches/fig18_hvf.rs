//! Fig. 18: Hardware Vulnerability Factor (HVF) vs AVF for the physical
//! register file and the L1 data cache over six benchmarks — HVF and AVF
//! measured on the *same* runs.

use marvel_core::{run_campaign, CampaignConfig};
use marvel_experiments::{banner, config, cpu_golden, results_dir};
use marvel_isa::Isa;
use marvel_soc::Target;

const BENCHES: [&str; 6] = ["qsort", "sha", "crc32", "dijkstra", "fft", "stringsearch"];

fn main() {
    banner("Fig. 18", "HVF vs AVF (physical register file + L1D, same runs)");
    let cc = CampaignConfig { collect_hvf: true, ..config() };
    let mut out = format!("{:<14}{:<10}{:>8}{:>8}\n", "benchmark", "target", "HVF%", "AVF%");
    let mut csv = String::from("benchmark,target,hvf,avf\n");
    for bench in BENCHES {
        let golden = cpu_golden(bench, Isa::RiscV, None);
        for (tname, target) in [("RF", Target::PrfInt), ("L1D", Target::L1D)] {
            let res = run_campaign(&golden, target, &cc);
            let hvf = res.hvf().expect("campaign collected HVF");
            let avf = res.avf();
            assert!(
                hvf + 1e-9 >= avf,
                "{bench}/{tname}: HVF ({hvf}) must be >= AVF ({avf}) by definition"
            );
            out.push_str(&format!(
                "{:<14}{:<10}{:>7.1}%{:>7.1}%\n",
                bench,
                tname,
                hvf * 100.0,
                avf * 100.0
            ));
            csv.push_str(&format!("{bench},{tname},{hvf:.4},{avf:.4}\n"));
            eprintln!("  [{bench}/{tname}] hvf={:.1}% avf={:.1}%", hvf * 100.0, avf * 100.0);
        }
    }
    print!("{out}");
    std::fs::write(results_dir().join("fig18_hvf.csv"), csv).unwrap();
    println!("[saved results/fig18_hvf.csv]");
}
