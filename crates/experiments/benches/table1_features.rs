//! Table I: framework feature matrix.
fn main() {
    marvel_experiments::banner("Table I", "resilience-analysis framework capabilities");
    print!("{}", marvel_core::features::render_table1());
    std::fs::write(
        marvel_experiments::results_dir().join("table1.txt"),
        marvel_core::features::render_table1(),
    )
    .unwrap();
}
