//! AVF of the store queue (transient, single-bit)
use marvel_core::FaultKind;
use marvel_experiments::{avf_figure, banner, results_dir, Metric};
use marvel_soc::Target;
fn main() {
    banner("Fig. 8", "AVF of the store queue (transient, single-bit)");
    // The combined runner (all_cpu_figures) computes the Fig. 4-13
    // campaigns in one pass and caches each series; reuse it when present
    // (delete results/.cache to recompute this figure standalone).
    let cached = results_dir().join(".cache/fig08_sq_avf.csv");
    if let Ok(csv) = std::fs::read_to_string(&cached) {
        println!("[reusing combined-run series from {cached:?}]");
        print!("{csv}");
        std::fs::write(results_dir().join("fig08_sq_avf.csv"), csv).unwrap();
        return;
    }
    let t = avf_figure("Fig. 8", Target::StoreQueue, FaultKind::Transient, Metric::TotalAvf);
    print!("{}", t.render());
    t.save_csv("fig08_sq_avf.csv");
}
