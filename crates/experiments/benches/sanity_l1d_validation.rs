//! Listing 1 sanity check: the L1 data cache validation program.
//!
//! The program fills a cache-sized, line-aligned array with zeros (ten
//! warm-up passes), executes the checkpoint marker, idles in a nop loop
//! (the injection window), executes the switch-cpu marker, then sums the
//! array — a non-zero sum means the injected fault landed and survived.
//! With faults directed uniformly at the resident array lines during the
//! idle window, the measured AVF must be ~100%, validating the injector's
//! coverage of the whole L1D.

use marvel_core::{run_masks, CampaignConfig, FaultEffect, FaultMask, FaultModel, Golden};
use marvel_experiments::{banner, results_dir, GOLDEN_BUDGET};
use marvel_ir::{assemble, FuncBuilder, Module};
use marvel_isa::{AluOp, Cond, Isa, MemWidth};
use marvel_soc::{System, Target};

/// Words in the test array: exactly the 32 KiB L1D.
const CSIZE: i64 = 4096;

fn validation_program() -> Module {
    let mut m = Module::new();
    let arr = m.global_zeroed("myArrSec", (CSIZE * 8) as usize, 64);
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let base = b.addr_of(arr);
    // Ten zero-fill passes to warm every way (lines 13–15 of Listing 1).
    for _ in 0..10 {
        let i = b.li(0);
        let top = b.new_label();
        b.bind(top);
        b.store_idx(MemWidth::D, 0i64, base, i);
        let i2 = b.bin(AluOp::Add, i, 1);
        b.assign(i, i2);
        b.br(Cond::Lt, i, CSIZE, top);
    }
    b.checkpoint(); // start injection here
    let j = b.li(0);
    let top = b.new_label();
    b.bind(top);
    b.nop();
    b.nop();
    let j2 = b.bin(AluOp::Add, j, 1);
    b.assign(j, j2);
    b.br(Cond::Lt, j, 5000, top);
    b.switch_cpu(); // end injection here
    let sum = b.li(0);
    let i = b.li(0);
    let top2 = b.new_label();
    b.bind(top2);
    let v = b.load_idx(MemWidth::D, false, base, i);
    let s = b.bin(AluOp::Add, sum, v);
    b.assign(sum, s);
    let i2 = b.bin(AluOp::Add, i, 1);
    b.assign(i, i2);
    b.br(Cond::Lt, i, CSIZE, top2);
    for k in 0..8i64 {
        let byte = b.bin(AluOp::Srl, sum, k * 8);
        b.out_byte(byte);
    }
    b.halt();
    m.define(f, b.build());
    m
}

fn main() {
    banner("Sanity", "Listing 1 — L1D injector validation (expected AVF ≈ 100%)");
    let n_faults: usize =
        std::env::var("MARVEL_FAULTS").ok().and_then(|v| v.parse().ok()).unwrap_or(300);
    let mut out = String::new();
    for isa in Isa::ALL {
        let bin = assemble(&validation_program(), isa).unwrap();
        let mut sys = System::new(marvel_cpu::CoreConfig::table2(isa));
        sys.load_binary(&bin);
        let golden = Golden::prepare(sys, GOLDEN_BUDGET).unwrap();
        let switch = golden.switch_cycle.expect("program has a switch marker");
        // Uniform faults over the whole L1D during the idle window.
        let bit_len = golden.ckpt.bit_len(Target::L1D);
        let mut rng = marvel_workloads::util::Lcg::new(0x11D);
        let lo = golden.ckpt_cycle + 10;
        let hi = switch.max(lo + 1);
        let masks: Vec<FaultMask> = (0..n_faults)
            .map(|_| FaultMask {
                target: Target::L1D,
                bits: vec![rng.below(bit_len)],
                model: FaultModel::Transient { cycle: lo + rng.below(hi - lo) },
            })
            .collect();
        let cc = CampaignConfig { n_faults, ..Default::default() };
        let records = run_masks(&golden, &masks, &cc);
        let unmasked = records.iter().filter(|r| r.effect != FaultEffect::Masked).count() as f64;
        let avf = unmasked / records.len() as f64;
        out.push_str(&format!("{:<8} measured L1D AVF = {:>5.1}%\n", isa.name(), avf * 100.0));
        assert!(avf > 0.90, "{isa}: validation AVF {avf:.3} below 90% — injector coverage broken");
    }
    print!("{out}");
    out.push_str("expected: ~100% (every resident array bit is read by the checksum)\n");
    std::fs::write(results_dir().join("sanity_l1d_validation.txt"), out).unwrap();
    println!("PASS: L1D fault-injection coverage validated");
}
