//! Fig. 15: physical-register-file AVF sensitivity to PRF size
//! (96/128/192 registers, RISC-V).

use marvel_core::{run_campaign, weighted_avf};
use marvel_experiments::{banner, benches, config, cpu_golden, results_dir};
use marvel_isa::Isa;
use marvel_soc::Target;

fn main() {
    banner("Fig. 15", "RF AVF vs number of physical registers (RISC-V)");
    let cc = config();
    let sizes = [96usize, 128, 192];
    let mut out = format!("{:<16}{:>8}{:>8}{:>8}\n", "benchmark", "96", "128", "192");
    let mut csv = String::from("benchmark,prf96,prf128,prf192\n");
    let mut per_size: Vec<Vec<(f64, f64)>> = vec![Vec::new(); sizes.len()];
    for bench in benches() {
        let mut vals = Vec::new();
        for (k, &n) in sizes.iter().enumerate() {
            let golden = cpu_golden(bench, Isa::RiscV, Some(n));
            let res = run_campaign(&golden, Target::PrfInt, &cc);
            vals.push(res.avf() * 100.0);
            per_size[k].push((res.avf(), golden.exec_cycles as f64));
            eprintln!("  [{bench}/prf{n}] avf={:.1}%", res.avf() * 100.0);
        }
        out.push_str(&format!("{:<16}{:>7.1}%{:>7.1}%{:>7.1}%\n", bench, vals[0], vals[1], vals[2]));
        csv.push_str(&format!("{bench},{:.3},{:.3},{:.3}\n", vals[0], vals[1], vals[2]));
    }
    out.push_str(&format!(
        "{:<16}{:>7.1}%{:>7.1}%{:>7.1}%\n",
        "wAVF",
        weighted_avf(&per_size[0]) * 100.0,
        weighted_avf(&per_size[1]) * 100.0,
        weighted_avf(&per_size[2]) * 100.0
    ));
    print!("{out}");
    std::fs::write(results_dir().join("fig15_prf_sensitivity.csv"), csv).unwrap();
    println!("[saved results/fig15_prf_sensitivity.csv]");
}
