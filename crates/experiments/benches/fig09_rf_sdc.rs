//! SDC-only AVF of the physical register file
use marvel_core::FaultKind;
use marvel_experiments::{avf_figure, banner, results_dir, Metric};
use marvel_soc::Target;
fn main() {
    banner("Fig. 9", "SDC-only AVF of the physical register file");
    // The combined runner (all_cpu_figures) computes the Fig. 4-13
    // campaigns in one pass and caches each series; reuse it when present
    // (delete results/.cache to recompute this figure standalone).
    let cached = results_dir().join(".cache/fig09_rf_sdc.csv");
    if let Ok(csv) = std::fs::read_to_string(&cached) {
        println!("[reusing combined-run series from {cached:?}]");
        print!("{csv}");
        std::fs::write(results_dir().join("fig09_rf_sdc.csv"), csv).unwrap();
        return;
    }
    let t = avf_figure("Fig. 9", Target::PrfInt, FaultKind::Transient, Metric::SdcAvf);
    print!("{}", t.render());
    t.save_csv("fig09_rf_sdc.csv");
}
