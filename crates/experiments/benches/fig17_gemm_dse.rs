//! Fig. 17: GEMM accelerator design-space exploration — AVF of the
//! MATRIX1 input SPM, performance, and area across five functional-unit
//! configurations.

use marvel_accel::FuConfig;
use marvel_core::{run_dsa_campaign, DsaGolden};
use marvel_experiments::{banner, config, results_dir};
use marvel_soc::Target;
use marvel_workloads::accel::design;

fn main() {
    banner("Fig. 17", "GEMM DSE: MATRIX1 AVF / performance / area vs parallel FUs");
    let cc = config();
    let configs = [16usize, 8, 4, 2, 1];
    let d = design("GEMM");
    let mut out = format!("{:<8}{:>10}{:>14}{:>12}\n", "FUs", "AVF%", "exec cycles", "area (a.u.)");
    let mut csv = String::from("fus,avf,cycles,area\n");
    for &n in &configs {
        let fu = FuConfig::uniform(n);
        let golden = DsaGolden::prepare((d.make)(fu), 80_000_000);
        let area = golden.harness.accel.area();
        let res = run_dsa_campaign(&golden, Target::Spm { accel: 0, mem: 0 }, &cc);
        out.push_str(&format!(
            "{:<8}{:>9.1}%{:>14}{:>12.1}\n",
            n,
            res.avf() * 100.0,
            golden.cycles,
            area
        ));
        csv.push_str(&format!("{n},{:.4},{},{:.2}\n", res.avf(), golden.cycles, area));
        eprintln!("  [fu={n}] avf={:.1}% cycles={}", res.avf() * 100.0, golden.cycles);
    }
    print!("{out}");
    std::fs::write(results_dir().join("fig17_gemm_dse.csv"), csv).unwrap();
    println!("[saved results/fig17_gemm_dse.csv]");
}
