//! AVF of the L1 data cache (transient, single-bit)
use marvel_core::FaultKind;
use marvel_experiments::{avf_figure, banner, results_dir, Metric};
use marvel_soc::Target;
fn main() {
    banner("Fig. 6", "AVF of the L1 data cache (transient, single-bit)");
    // The combined runner (all_cpu_figures) computes the Fig. 4-13
    // campaigns in one pass and caches each series; reuse it when present
    // (delete results/.cache to recompute this figure standalone).
    let cached = results_dir().join(".cache/fig06_l1d_avf.csv");
    if let Ok(csv) = std::fs::read_to_string(&cached) {
        println!("[reusing combined-run series from {cached:?}]");
        print!("{csv}");
        std::fs::write(results_dir().join("fig06_l1d_avf.csv"), csv).unwrap();
        return;
    }
    let t = avf_figure("Fig. 6", Target::L1D, FaultKind::Transient, Metric::TotalAvf);
    print!("{}", t.render());
    t.save_csv("fig06_l1d_avf.csv");
}
