//! Table III: fault model descriptions.
use marvel_core::FaultModel;
fn main() {
    marvel_experiments::banner("Table III", "fault models");
    let rows = [
        ("Transient", FaultModel::Transient { cycle: 0 }.describe()),
        ("Permanent", FaultModel::Permanent { value: false }.describe()),
    ];
    let mut out = String::new();
    for (name, desc) in rows {
        out.push_str(&format!("{name:<12}{desc}\n"));
    }
    print!("{out}");
    std::fs::write(marvel_experiments::results_dir().join("table3.txt"), out).unwrap();
}
