//! Table II: major simulator configurations for each ISA.
use marvel_cpu::CoreConfig;
fn main() {
    marvel_experiments::banner("Table II", "major simulator configuration (all ISAs)");
    let mut out = String::new();
    for (k, v) in CoreConfig::table2_rows() {
        out.push_str(&format!("{k:<26}{v}\n"));
    }
    print!("{out}");
    std::fs::write(marvel_experiments::results_dir().join("table2.txt"), out).unwrap();
}
