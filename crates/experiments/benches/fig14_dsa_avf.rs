//! Fig. 14: AVF breakdown (SDC vs Crash) for all eight accelerator
//! designs, per Table IV injection component.

use marvel_accel::FuConfig;
use marvel_core::{run_dsa_campaign, DsaGolden};
use marvel_experiments::{banner, config, results_dir};
use marvel_workloads::accel::designs;

fn main() {
    banner("Fig. 14", "DSA AVF breakdown (SDC + Crash) per injection component");
    let cc = config();
    let mut out =
        format!("{:<12}{:<10}{:>8}{:>8}{:>8}\n", "design", "component", "SDC%", "Crash%", "AVF%");
    let mut csv = String::from("design,component,sdc,crash,avf\n");
    for d in designs() {
        let golden = DsaGolden::prepare((d.make)(FuConfig::default()), 50_000_000);
        for c in &d.components {
            let res = run_dsa_campaign(&golden, c.target, &cc);
            out.push_str(&format!(
                "{:<12}{:<10}{:>7.1}%{:>7.1}%{:>7.1}%\n",
                d.name,
                c.name,
                res.sdc_avf() * 100.0,
                res.crash_avf() * 100.0,
                res.avf() * 100.0
            ));
            csv.push_str(&format!(
                "{},{},{:.3},{:.3},{:.3}\n",
                d.name,
                c.name,
                res.sdc_avf(),
                res.crash_avf(),
                res.avf()
            ));
            eprintln!("  [{}] {} done", d.name, c.name);
        }
    }
    print!("{out}");
    std::fs::write(results_dir().join("fig14_dsa_avf.csv"), csv).unwrap();
    println!("[saved results/fig14_dsa_avf.csv]");
}
