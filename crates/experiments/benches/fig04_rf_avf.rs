//! AVF of the integer physical register file (transient, single-bit)
use marvel_core::FaultKind;
use marvel_experiments::{avf_figure, banner, results_dir, Metric};
use marvel_soc::Target;
fn main() {
    banner("Fig. 4", "AVF of the integer physical register file (transient, single-bit)");
    // The combined runner (all_cpu_figures) computes the Fig. 4-13
    // campaigns in one pass and caches each series; reuse it when present
    // (delete results/.cache to recompute this figure standalone).
    let cached = results_dir().join(".cache/fig04_rf_avf.csv");
    if let Ok(csv) = std::fs::read_to_string(&cached) {
        println!("[reusing combined-run series from {cached:?}]");
        print!("{csv}");
        std::fs::write(results_dir().join("fig04_rf_avf.csv"), csv).unwrap();
        return;
    }
    let t = avf_figure("Fig. 4", Target::PrfInt, FaultKind::Transient, Metric::TotalAvf);
    print!("{}", t.render());
    t.save_csv("fig04_rf_avf.csv");
}
