//! Extension experiment (beyond the paper's shown single-bit results):
//! multi-bit adjacent-burst faults in the L1D — the spatial MBU scenario
//! the paper's framework supports (Section IV-A1) but does not plot.

use marvel_core::{run_masks, CampaignConfig, FaultEffect, FaultKind, MaskGenerator};
use marvel_experiments::{banner, config, cpu_golden, results_dir};
use marvel_isa::Isa;
use marvel_soc::Target;

fn main() {
    banner("Extension", "multi-bit adjacent bursts in the L1D (qsort, RISC-V)");
    let cc: CampaignConfig = config();
    let golden = cpu_golden("qsort", Isa::RiscV, None);
    let bit_len = golden.ckpt.bit_len(Target::L1D);
    let mut out = format!("{:<8}{:>8}{:>8}{:>8}\n", "burst", "AVF%", "SDC%", "Crash%");
    let mut csv = String::from("burst,avf,sdc,crash\n");
    for burst in [1u64, 2, 4, 8, 16] {
        let mut gen = MaskGenerator::new(cc.seed ^ burst);
        let masks = gen.adjacent_multi_bit(
            Target::L1D,
            bit_len,
            burst,
            FaultKind::Transient,
            golden.injection_window(),
            cc.n_faults,
        );
        let records = run_masks(&golden, &masks, &cc);
        let n = records.len() as f64;
        let sdc = records.iter().filter(|r| r.effect == FaultEffect::Sdc).count() as f64 / n;
        let crash = records.iter().filter(|r| r.effect == FaultEffect::Crash).count() as f64 / n;
        out.push_str(&format!(
            "{:<8}{:>7.1}%{:>7.1}%{:>7.1}%\n",
            burst,
            (sdc + crash) * 100.0,
            sdc * 100.0,
            crash * 100.0
        ));
        csv.push_str(&format!("{burst},{:.4},{sdc:.4},{crash:.4}\n", sdc + crash));
        eprintln!("  [burst={burst}] done");
    }
    out.push_str("expected: AVF non-decreasing with burst size (more corrupted bits\nper event, same spatial locality).\n");
    print!("{out}");
    std::fs::write(results_dir().join("ext_multibit.csv"), csv).unwrap();
    println!("[saved results/ext_multibit.csv]");
}
