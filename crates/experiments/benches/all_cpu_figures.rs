//! Combined runner for the CPU-side figures (Fig. 4–13): one golden run
//! per (benchmark × ISA) reused across all five transient structure
//! campaigns and both permanent-fault campaigns. Writes each figure's
//! series into `results/` and a cache under `results/.cache/` that the
//! individual per-figure harnesses reuse (delete the cache to force a
//! figure to recompute on its own).
//!
//! Figs. 9–11 are by construction the SDC-only view of the same campaign
//! records as Figs. 4–6, so they come for free — exactly as in the paper,
//! where each run is classified once into Masked/SDC/Crash.

use marvel_core::{run_campaign, weighted_avf, CampaignConfig, CampaignResult, FaultKind};
use marvel_experiments::{banner, benches, config, cpu_golden, results_dir, FigTable, Metric};
use marvel_isa::Isa;
use marvel_soc::Target;

struct FigSpec {
    file: &'static str,
    title: &'static str,
    target: Target,
    kind: FaultKind,
    metric: Metric,
}

const SPECS: [FigSpec; 10] = [
    FigSpec {
        file: "fig04_rf_avf",
        title: "Fig. 4 (RF AVF)",
        target: Target::PrfInt,
        kind: FaultKind::Transient,
        metric: Metric::TotalAvf,
    },
    FigSpec {
        file: "fig05_l1i_avf",
        title: "Fig. 5 (L1I AVF)",
        target: Target::L1I,
        kind: FaultKind::Transient,
        metric: Metric::TotalAvf,
    },
    FigSpec {
        file: "fig06_l1d_avf",
        title: "Fig. 6 (L1D AVF)",
        target: Target::L1D,
        kind: FaultKind::Transient,
        metric: Metric::TotalAvf,
    },
    FigSpec {
        file: "fig07_lq_avf",
        title: "Fig. 7 (LQ AVF)",
        target: Target::LoadQueue,
        kind: FaultKind::Transient,
        metric: Metric::TotalAvf,
    },
    FigSpec {
        file: "fig08_sq_avf",
        title: "Fig. 8 (SQ AVF)",
        target: Target::StoreQueue,
        kind: FaultKind::Transient,
        metric: Metric::TotalAvf,
    },
    FigSpec {
        file: "fig09_rf_sdc",
        title: "Fig. 9 (RF SDC AVF)",
        target: Target::PrfInt,
        kind: FaultKind::Transient,
        metric: Metric::SdcAvf,
    },
    FigSpec {
        file: "fig10_l1i_sdc",
        title: "Fig. 10 (L1I SDC AVF)",
        target: Target::L1I,
        kind: FaultKind::Transient,
        metric: Metric::SdcAvf,
    },
    FigSpec {
        file: "fig11_l1d_sdc",
        title: "Fig. 11 (L1D SDC AVF)",
        target: Target::L1D,
        kind: FaultKind::Transient,
        metric: Metric::SdcAvf,
    },
    FigSpec {
        file: "fig12_l1i_perm",
        title: "Fig. 12 (L1I permanent SDC)",
        target: Target::L1I,
        kind: FaultKind::Permanent,
        metric: Metric::SdcAvf,
    },
    FigSpec {
        file: "fig13_l1d_perm",
        title: "Fig. 13 (L1D permanent SDC)",
        target: Target::L1D,
        kind: FaultKind::Permanent,
        metric: Metric::SdcAvf,
    },
];

/// Unique (target, kind) campaigns behind the ten figures.
const CAMPAIGNS: [(Target, FaultKind); 7] = [
    (Target::PrfInt, FaultKind::Transient),
    (Target::L1I, FaultKind::Transient),
    (Target::L1D, FaultKind::Transient),
    (Target::LoadQueue, FaultKind::Transient),
    (Target::StoreQueue, FaultKind::Transient),
    (Target::L1I, FaultKind::Permanent),
    (Target::L1D, FaultKind::Permanent),
];

fn campaign_idx(t: Target, k: FaultKind) -> usize {
    CAMPAIGNS.iter().position(|&(ct, ck)| ct == t && ck == k).expect("known campaign")
}

fn main() {
    banner("Figs. 4-13", "combined CPU-structure campaigns (shared goldens + records)");
    let base = config();
    let names = benches();
    let isas = Isa::ALL;

    // results[bench][isa][campaign]
    let mut results: Vec<Vec<Vec<CampaignResult>>> = Vec::new();
    let mut weights: Vec<Vec<f64>> = Vec::new();
    for bench in &names {
        let mut per_isa = Vec::new();
        let mut w_isa = Vec::new();
        for &isa in &isas {
            let golden = cpu_golden(bench, isa, None);
            w_isa.push(golden.exec_cycles as f64);
            let mut per_campaign = Vec::new();
            for &(target, kind) in &CAMPAIGNS {
                let cc = CampaignConfig { kind, ..base.clone() };
                let res = run_campaign(&golden, target, &cc);
                eprintln!(
                    "  [{bench}/{isa}] {} {:?}: avf={:.1}% sdc={:.1}%",
                    target.name(),
                    kind,
                    res.avf() * 100.0,
                    res.sdc_avf() * 100.0
                );
                per_campaign.push(res);
            }
            per_isa.push(per_campaign);
        }
        results.push(per_isa);
        weights.push(w_isa);
    }

    let cache = results_dir().join(".cache");
    std::fs::create_dir_all(&cache).expect("cache dir");
    let margin_pct = marvel_core::error_margin(base.n_faults, u64::MAX, base.confidence) * 100.0;

    for spec in &SPECS {
        let ci = campaign_idx(spec.target, spec.kind);
        let mut rows = Vec::new();
        let mut per_isa_pairs: Vec<Vec<(f64, f64)>> = vec![Vec::new(); isas.len()];
        for (bi, bench) in names.iter().enumerate() {
            let mut vals = Vec::new();
            for (ii, _) in isas.iter().enumerate() {
                let v = spec.metric.of(&results[bi][ii][ci]);
                vals.push(v * 100.0);
                per_isa_pairs[ii].push((v, weights[bi][ii]));
            }
            rows.push((bench.to_string(), vals));
        }
        let table = FigTable {
            title: spec.title.to_string(),
            isas: isas.to_vec(),
            rows,
            wavf: per_isa_pairs.iter().map(|p| weighted_avf(p) * 100.0).collect(),
            margin_pct,
        };
        print!("{}", table.render());
        table.save_csv(&format!("{}.csv", spec.file));
        // Mirror into the cache the per-figure harnesses consult.
        let src = results_dir().join(format!("{}.csv", spec.file));
        let _ = std::fs::copy(&src, cache.join(format!("{}.csv", spec.file)));
    }
    println!("cached per-figure series under results/.cache/");
}
