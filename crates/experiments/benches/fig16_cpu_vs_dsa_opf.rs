//! Fig. 16: performance-aware comparison — AVF breakdown (left) and
//! Operations-per-Failure (right) for GEMM/BFS/FFT/KNN on a standalone
//! RISC-V CPU vs the corresponding accelerator designs.
//!
//! The CPU side aggregates the AVF over its two dominant structures
//! (integer RF and L1D); the DSA side aggregates over its Table IV
//! components. Both platforms are assumed to run at the same clock, so
//! cycle counts stand in for time.

use marvel_accel::FuConfig;
use marvel_core::{opf, run_campaign, run_dsa_campaign, DsaGolden, Golden};
use marvel_experiments::{banner, config, results_dir, GOLDEN_BUDGET};
use marvel_ir::assemble;
use marvel_isa::Isa;
use marvel_soc::{System, Target};
use marvel_workloads::{accel, cpu_ports, mibench};

const CLOCK_HZ: f64 = 2.0e9;

struct Row {
    label: String,
    sdc: f64,
    crash: f64,
    cycles: u64,
    ops: f64,
}

fn cpu_row(label: &str, module: marvel_ir::Module, ops: f64) -> Row {
    let cc = config();
    let bin = assemble(&module, Isa::RiscV).unwrap();
    let mut sys = System::new(marvel_cpu::CoreConfig::table2(Isa::RiscV));
    sys.load_binary(&bin);
    let golden = Golden::prepare(sys, GOLDEN_BUDGET).unwrap();
    let mut sdc = 0.0;
    let mut crash = 0.0;
    for t in [Target::PrfInt, Target::L1D] {
        let r = run_campaign(&golden, t, &cc);
        sdc += r.sdc_avf() / 2.0;
        crash += r.crash_avf() / 2.0;
    }
    eprintln!("  [cpu/{label}] done ({} cycles)", golden.exec_cycles);
    Row { label: format!("{label}-CPU"), sdc, crash, cycles: golden.exec_cycles, ops }
}

fn dsa_row(label: &str, design_name: &str, ops: f64) -> Row {
    let cc = config();
    let d = accel::design(design_name);
    let golden = DsaGolden::prepare((d.make)(FuConfig::default()), 80_000_000);
    let mut sdc = 0.0;
    let mut crash = 0.0;
    let n = d.components.len() as f64;
    for c in &d.components {
        let r = run_dsa_campaign(&golden, c.target, &cc);
        sdc += r.sdc_avf() / n;
        crash += r.crash_avf() / n;
    }
    eprintln!("  [dsa/{label}] done ({} cycles)", golden.cycles);
    Row { label: format!("{label}-DSA"), sdc, crash, cycles: golden.cycles, ops }
}

fn main() {
    banner("Fig. 16", "CPU vs DSA: AVF breakdown and Operations-per-Failure");
    let rows = vec![
        cpu_row("GEMM", cpu_ports::gemm_cpu(), cpu_ports::ops_per_run("gemm")),
        dsa_row("GEMM", "GEMM", cpu_ports::ops_per_run("gemm_dsa")),
        cpu_row("BFS", cpu_ports::bfs_cpu(), cpu_ports::ops_per_run("bfs")),
        dsa_row("BFS", "BFS", cpu_ports::ops_per_run("bfs")),
        cpu_row("FFT", mibench::build("fft"), cpu_ports::ops_per_run("fft")),
        dsa_row("FFT", "FFT", cpu_ports::ops_per_run("fft_dsa")),
        cpu_row("KNN", cpu_ports::knn_cpu(), cpu_ports::ops_per_run("knn")),
        dsa_row("KNN", "MD_KNN", cpu_ports::ops_per_run("knn")),
    ];

    let mut out = format!(
        "{:<12}{:>8}{:>8}{:>8}{:>14}{:>16}\n",
        "platform", "SDC%", "Crash%", "AVF%", "exec cycles", "OPF (ops/fail)"
    );
    let mut csv = String::from("platform,sdc,crash,avf,cycles,opf\n");
    for r in &rows {
        let avf = r.sdc + r.crash;
        let secs = r.cycles as f64 / CLOCK_HZ;
        let o = opf(r.ops, secs, avf);
        out.push_str(&format!(
            "{:<12}{:>7.1}%{:>7.1}%{:>7.1}%{:>14}{:>16.3e}\n",
            r.label,
            r.sdc * 100.0,
            r.crash * 100.0,
            avf * 100.0,
            r.cycles,
            o
        ));
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{},{:.4e}\n",
            r.label, r.sdc, r.crash, avf, r.cycles, o
        ));
    }
    print!("{out}");
    std::fs::write(results_dir().join("fig16_cpu_vs_dsa_opf.csv"), csv).unwrap();
    println!("[saved results/fig16_cpu_vs_dsa_opf.csv]");
}
