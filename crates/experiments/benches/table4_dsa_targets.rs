//! Table IV: target injection components for each DSA design.
use marvel_workloads::accel::designs;
fn main() {
    marvel_experiments::banner("Table IV", "DSA injection components");
    let mut out =
        format!("{:<12}{:<10}{:>14}  {}\n", "Accelerator", "Component", "Size (Bytes)", "Type");
    for d in designs() {
        for c in &d.components {
            out.push_str(&format!("{:<12}{:<10}{:>14}  {}\n", d.name, c.name, c.bytes, c.kind.name()));
        }
    }
    print!("{out}");
    std::fs::write(marvel_experiments::results_dir().join("table4.txt"), out).unwrap();
}
