//! SDC probability of permanent faults in the L1 instruction cache
use marvel_core::FaultKind;
use marvel_experiments::{avf_figure, banner, results_dir, Metric};
use marvel_soc::Target;
fn main() {
    banner("Fig. 12", "SDC probability of permanent faults in the L1 instruction cache");
    // The combined runner (all_cpu_figures) computes the Fig. 4-13
    // campaigns in one pass and caches each series; reuse it when present
    // (delete results/.cache to recompute this figure standalone).
    let cached = results_dir().join(".cache/fig12_l1i_perm.csv");
    if let Ok(csv) = std::fs::read_to_string(&cached) {
        println!("[reusing combined-run series from {cached:?}]");
        print!("{csv}");
        std::fs::write(results_dir().join("fig12_l1i_perm.csv"), csv).unwrap();
        return;
    }
    let t = avf_figure("Fig. 12", Target::L1I, FaultKind::Permanent, Metric::SdcAvf);
    print!("{}", t.render());
    t.save_csv("fig12_l1i_perm.csv");
}
