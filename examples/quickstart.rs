//! Quickstart: build a tiny program, checkpoint it, run a transient-fault
//! campaign on the physical register file, and print the AVF.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gem5_marvel::core::{run_campaign, CampaignConfig, Golden};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::{assemble, FuncBuilder, Module};
use gem5_marvel::isa::{AluOp, Cond, Isa, MemWidth};
use gem5_marvel::soc::{System, Target};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a workload against the portable IR: sum an array, print a
    //    digest. The `checkpoint()` marker is where campaigns snapshot.
    let mut m = Module::new();
    let data = m.global_u64("data", &(1..=64u64).collect::<Vec<_>>());
    let main = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let base = b.addr_of(data);
    b.checkpoint();
    let acc = b.li(0);
    let i = b.li(0);
    let top = b.new_label();
    b.bind(top);
    let v = b.load_idx(MemWidth::D, false, base, i);
    let s = b.bin(AluOp::Add, acc, v);
    b.assign(acc, s);
    let i2 = b.bin(AluOp::Add, i, 1);
    b.assign(i, i2);
    b.br(Cond::Lt, i, 64, top);
    for k in 0..8i64 {
        let byte = b.bin(AluOp::Srl, acc, k * 8);
        b.out_byte(byte);
    }
    b.halt();
    m.define(main, b.build());

    // 2. Compile it for each ISA flavour and run a PRF campaign.
    println!("{:<8}{:>8}{:>8}{:>8}{:>10}", "ISA", "AVF%", "SDC%", "Crash%", "cycles");
    for isa in Isa::ALL {
        let bin = assemble(&m, isa)?;
        let mut sys = System::new(CoreConfig::table2(isa));
        sys.load_binary(&bin);
        let golden = Golden::prepare(sys, 10_000_000)?;

        let cc = CampaignConfig { n_faults: 200, ..Default::default() };
        let res = run_campaign(&golden, Target::PrfInt, &cc);
        println!(
            "{:<8}{:>7.1}%{:>7.1}%{:>7.1}%{:>10}",
            isa.name(),
            res.avf() * 100.0,
            res.sdc_avf() * 100.0,
            res.crash_avf() * 100.0,
            golden.exec_cycles
        );
    }
    println!(
        "\n(200 faults/cell; margin ±{:.1}% at 95%)",
        100.0 * gem5_marvel::core::error_margin(200, u64::MAX, 0.95)
    );
    Ok(())
}
