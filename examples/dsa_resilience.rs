//! DSA resilience study: inject transient faults into the GEMM
//! accelerator's scratchpads across functional-unit configurations — a
//! miniature of the paper's Fig. 14 + Fig. 17 flow.
//!
//! ```sh
//! cargo run --release --example dsa_resilience
//! ```

use gem5_marvel::accel::FuConfig;
use gem5_marvel::core::{run_dsa_campaign, CampaignConfig, DsaGolden};
use gem5_marvel::workloads::accel::design;

fn main() {
    let d = design("GEMM");
    let cc = CampaignConfig { n_faults: 80, ..Default::default() };

    println!("GEMM accelerator: AVF per component and FU configuration\n");
    println!("{:<8}{:<10}{:>8}{:>8}{:>12}{:>10}", "FUs", "component", "SDC%", "AVF%", "cycles", "area");
    for fus in [8usize, 2] {
        let golden = DsaGolden::prepare((d.make)(FuConfig::uniform(fus)), 80_000_000);
        for c in &d.components {
            let res = run_dsa_campaign(&golden, c.target, &cc);
            println!(
                "{:<8}{:<10}{:>7.1}%{:>7.1}%{:>12}{:>10.1}",
                fus,
                c.name,
                res.sdc_avf() * 100.0,
                res.avf() * 100.0,
                golden.cycles,
                golden.harness.accel.area(),
            );
        }
    }
    println!("\nExpected shapes (paper Fig. 14/17):");
    println!(" - data SPM faults are SDC-dominated (datapath-heavy designs);");
    println!(" - the output SPM (MATRIX3) has lower AVF than the input (overwrites mask);");
    println!(" - fewer FUs -> longer runtime and higher input-SPM AVF, smaller area.");
}
