//! Fault forensics: the paper's HVF/AVF correlation (Fig. 3b) on single
//! faults — inject one bit, watch whether it reaches the commit stage
//! (HVF) and what it does to the program (AVF), from the *same run* —
//! then replay the worst offender with the flight recorder attached and
//! print its full timeline (armed → activated → diverged → classified).
//!
//! ```sh
//! cargo run --release --example fault_forensics
//! ```

use gem5_marvel::core::{
    run_one, CampaignConfig, FaultEffect, FaultMask, FaultModel, Golden, HvfEffect, TelemetryConfig,
};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::assemble;
use gem5_marvel::isa::Isa;
use gem5_marvel::soc::{System, Target};
use gem5_marvel::telemetry::Registry;
use gem5_marvel::workloads::mibench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let isa = Isa::Arm;
    let bin = assemble(&mibench::build("crc32"), isa)?;
    let mut sys = System::new(CoreConfig::table2(isa));
    sys.load_binary(&bin);
    let golden = Golden::prepare(sys, 50_000_000)?;
    println!(
        "golden: {} cycles from checkpoint, {} output bytes, {} commit records",
        golden.exec_cycles,
        golden.output.len(),
        golden.trace.len()
    );

    let cc = CampaignConfig { n_faults: 1, collect_hvf: true, ..Default::default() };
    let mid = golden.ckpt_cycle + golden.exec_cycles / 3;

    println!(
        "\n{:<14}{:>8}{:<4}{:>14}{:>16}{:>12}",
        "target", "bit", "", "cycle", "HVF class", "AVF class"
    );
    let cases = [
        (Target::PrfInt, 40 * 64 + 3),
        (Target::PrfInt, 100 * 64 + 62),
        (Target::L1D, 12_345),
        (Target::L1I, 99_000),
        (Target::StoreQueue, 5 * 136 + 70),
    ];
    let mut worst: Option<FaultMask> = None;
    for (target, bit) in cases {
        let mask = FaultMask { target, bits: vec![bit], model: FaultModel::Transient { cycle: mid } };
        let rec = run_one(&golden, &mask, &cc);
        if rec.effect != FaultEffect::Masked && worst.is_none() {
            worst = Some(mask.clone());
        }
        println!(
            "{:<14}{:>8}{:<4}{:>14}{:>16}{:>12}",
            target.name(),
            bit,
            "",
            mid,
            match rec.hvf {
                Some(HvfEffect::Corruption) => "corruption",
                Some(HvfEffect::Masked) => "hw-masked",
                None => "-",
            },
            match rec.effect {
                FaultEffect::Masked => "masked",
                FaultEffect::Sdc => "SDC",
                FaultEffect::Crash => "CRASH",
            },
        );
    }
    println!("\nEvery SW-visible (AVF) effect is also a commit-stage (HVF) corruption,");
    println!("but corruptions can still be masked by the software layer — HVF >= AVF.");

    // Replay the first non-masked fault with the flight recorder attached:
    // same seed-free directed injection, now carrying a ring buffer of
    // typed events. The rerun classifies identically (telemetry is
    // observational) and hands back the timeline.
    if let Some(mask) = worst {
        let telemetry = TelemetryConfig {
            registry: Registry::new(),
            progress_interval_ms: 0,
            flight_capacity: 64,
            taint: false,
            ..Default::default()
        };
        let cc_rec = CampaignConfig { n_faults: 1, collect_hvf: true, telemetry, ..Default::default() };
        let rec = run_one(&golden, &mask, &cc_rec);
        println!(
            "\nflight-recorder replay of {} bit {} ({:?}):",
            mask.target.name(),
            mask.bits[0],
            rec.effect
        );
        match &rec.forensics {
            Some(dump) => print!("{}", dump.render()),
            None => println!("(run classified Masked — no timeline retained)"),
        }
        let snap = cc_rec.telemetry.registry.snapshot();
        if let Some((name, h)) = snap.histograms.first() {
            println!("{name}: mean {:.0} ns over {} restore(s)", h.mean(), h.count);
        }
    }
    Ok(())
}
