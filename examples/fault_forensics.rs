//! Fault forensics: the paper's HVF/AVF correlation (Fig. 3b) on single
//! faults — inject one bit, watch whether it reaches the commit stage
//! (HVF) and what it does to the program (AVF), from the *same run*.
//!
//! ```sh
//! cargo run --release --example fault_forensics
//! ```

use gem5_marvel::core::{run_one, CampaignConfig, FaultEffect, FaultMask, FaultModel, Golden, HvfEffect};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::assemble;
use gem5_marvel::isa::Isa;
use gem5_marvel::soc::{System, Target};
use gem5_marvel::workloads::mibench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let isa = Isa::Arm;
    let bin = assemble(&mibench::build("crc32"), isa)?;
    let mut sys = System::new(CoreConfig::table2(isa));
    sys.load_binary(&bin);
    let golden = Golden::prepare(sys, 50_000_000)?;
    println!(
        "golden: {} cycles from checkpoint, {} output bytes, {} commit records",
        golden.exec_cycles,
        golden.output.len(),
        golden.trace.len()
    );

    let cc = CampaignConfig { n_faults: 1, collect_hvf: true, ..Default::default() };
    let mid = golden.ckpt_cycle + golden.exec_cycles / 3;

    println!("\n{:<14}{:>8}{:<4}{:>14}{:>16}{:>12}", "target", "bit", "", "cycle", "HVF class", "AVF class");
    let cases = [
        (Target::PrfInt, 40 * 64 + 3),
        (Target::PrfInt, 100 * 64 + 62),
        (Target::L1D, 12_345),
        (Target::L1I, 99_000),
        (Target::StoreQueue, 5 * 136 + 70),
    ];
    for (target, bit) in cases {
        let mask = FaultMask { target, bits: vec![bit], model: FaultModel::Transient { cycle: mid } };
        let rec = run_one(&golden, &mask, &cc);
        println!(
            "{:<14}{:>8}{:<4}{:>14}{:>16}{:>12}",
            target.name(),
            bit,
            "",
            mid,
            match rec.hvf {
                Some(HvfEffect::Corruption) => "corruption",
                Some(HvfEffect::Masked) => "hw-masked",
                None => "-",
            },
            match rec.effect {
                FaultEffect::Masked => "masked",
                FaultEffect::Sdc => "SDC",
                FaultEffect::Crash => "CRASH",
            },
        );
    }
    println!("\nEvery SW-visible (AVF) effect is also a commit-stage (HVF) corruption,");
    println!("but corruptions can still be masked by the software layer — HVF >= AVF.");
    Ok(())
}
