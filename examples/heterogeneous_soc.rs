//! Heterogeneous SoC demo: a RISC-V host CPU drives a hosted accelerator
//! through memory-mapped registers; DMA moves the data; completion is
//! signalled through the PLIC and an interrupt handler; the host polls the
//! ISR's flag word and prints the accelerator's results.
//!
//! This is the full SALAM-style flow of the paper's Fig. 1, including the
//! GIC→PLIC translation the paper describes (the SoC picks the interrupt
//! controller flavour from the host ISA).
//!
//! ```sh
//! cargo run --release --example heterogeneous_soc
//! ```

use gem5_marvel::accel::air::{CdfgBuilder, MemRef};
use gem5_marvel::accel::{Accelerator, DmaDir, FuConfig, Sram, SramKind};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::memmap::{ACCEL_MMR_BASE, IRQ_FLAG_ADDR};
use gem5_marvel::ir::{assemble, FuncBuilder, Module};
use gem5_marvel::isa::{AluOp, Cond, Isa, MemWidth};
use gem5_marvel::soc::{DmaPlanEntry, HostedAccel, RunOutcome, System};

/// OUT[i] = IN[i]^2 for 16 u64 elements.
fn square_accel() -> Accelerator {
    let mut g = CdfgBuilder::new();
    let entry = g.block(1);
    let body = g.block(2);
    let done = g.block(0);
    g.select(entry);
    let n = g.arg(0);
    let z = g.konst(0);
    g.jump(body, &[z, n]);
    g.select(body);
    let i = g.arg(0);
    let n = g.arg(1);
    let eight = g.konst(8);
    let off = g.alu(AluOp::Mul, i, eight);
    let v = g.load(MemRef::Spm(0), 8, off);
    let sq = g.alu(AluOp::Mul, v, v);
    g.store(MemRef::Spm(1), 8, off, sq);
    let one = g.konst(1);
    let i2 = g.alu(AluOp::Add, i, one);
    let more = g.alu(AluOp::Sltu, i2, n);
    g.branch(more, body, &[i2, n], done, &[]);
    g.select(done);
    g.finish();
    Accelerator::new(
        "square",
        g.build().expect("valid cdfg"),
        FuConfig::default(),
        vec![Sram::new("IN", SramKind::Spm, 128, 2), Sram::new("OUT", SramKind::Spm, 128, 2)],
        vec![],
        1,
    )
}

fn host_program() -> Module {
    let mut m = Module::new();
    // Input buffer in RAM (1..=16); output buffer zeroed.
    let input = m.global_u64("input", &(1..=16u64).collect::<Vec<_>>());
    let output = m.global_zeroed("output", 128, 8);
    let main = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    b.checkpoint();
    // Program the accelerator MMRs: data0 = count, data1 = in addr,
    // data2 = out addr; then set CTRL.start.
    let mmr = b.li(ACCEL_MMR_BASE as i64);
    let inp = b.addr_of(input);
    let outp = b.addr_of(output);
    b.store(MemWidth::D, 16, mmr, 16); // data0 (reg 2)
    b.store(MemWidth::D, inp, mmr, 24); // data1 (reg 3)
    b.store(MemWidth::D, outp, mmr, 32); // data2 (reg 4)
    b.store(MemWidth::D, 1, mmr, 0); // CTRL.start
                                     // Wait for the completion interrupt: the ISR writes source+1 to the
                                     // flag word.
    let flag_addr = b.li(IRQ_FLAG_ADDR as i64);
    let wait = b.new_label();
    b.bind(wait);
    let f = b.load(MemWidth::D, false, flag_addr, 0);
    b.br(Cond::Eq, f, 0, wait);
    // Print the squared values (low bytes).
    let i = b.li(0);
    let top = b.new_label();
    b.bind(top);
    let v = b.load_idx(MemWidth::D, false, outp, i);
    b.out_byte(v);
    let i2 = b.bin(AluOp::Add, i, 1);
    b.assign(i, i2);
    b.br(Cond::Lt, i, 16, top);
    b.halt();
    m.define(main, b.build());
    m
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let isa = Isa::RiscV;
    let mut sys = System::new(CoreConfig::table2(isa));
    println!("host ISA: {isa} → interrupt controller: {}", sys.bus.irq_ctrl.kind.name());

    // Attach the accelerator with its DMA plan (addresses come from the
    // MMR data registers the host programs at runtime).
    sys.add_accel(HostedAccel::new(
        square_accel(),
        vec![DmaPlanEntry {
            dir: DmaDir::ToSram,
            addr_arg: 1,
            mem: MemRef::Spm(0),
            mem_off: 0,
            len: 128,
        }],
        vec![DmaPlanEntry {
            dir: DmaDir::ToRam,
            addr_arg: 2,
            mem: MemRef::Spm(1),
            mem_off: 0,
            len: 128,
        }],
        vec![0],
    ));

    let bin = assemble(&host_program(), isa)?;
    sys.load_binary(&bin);
    match sys.run(5_000_000) {
        RunOutcome::Halted { cycles } => {
            println!("halted after {cycles} cycles");
            println!("accelerator results (i^2 & 0xFF): {:?}", sys.output());
            assert_eq!(sys.output()[3], 16); // 4^2
            assert_eq!(sys.output()[15], (16u64 * 16) as u8);
            println!("interrupt claims: {}", sys.bus.irq_ctrl.claims);
            Ok(())
        }
        o => Err(format!("unexpected outcome: {o:?}").into()),
    }
}
