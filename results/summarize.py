#!/usr/bin/env python3
"""Summarise the results/ CSVs: per-figure wAVF rows and value ranges."""
import csv, glob, os

os.chdir(os.path.dirname(os.path.abspath(__file__)))
for f in sorted(glob.glob("fig*.csv")):
    with open(f) as fh:
        rows = list(csv.reader(fh))
    header, body = rows[0], rows[1:]
    wavf = next((r for r in body if r[0] == "wAVF"), None)
    vals = [float(v) for r in body if r[0] != "wAVF" for v in r[1:] if v]
    if not vals:
        continue
    rng = f"{min(vals)*100:.1f}-{max(vals)*100:.1f}%" if max(vals) <= 1.0 else f"{min(vals):.1f}-{max(vals):.1f}"
    w = ", ".join(f"{h}={float(v)*1:.1f}" for h, v in zip(header[1:], wavf[1:])) if wavf else "-"
    print(f"{f:<28} range {rng:<14} wAVF[{w}]")
