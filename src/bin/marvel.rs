//! `marvel` — command-line driver for the fault-injection framework.
//!
//! ```text
//! marvel list
//! marvel run <benchmark> [--isa arm|x86|riscv] [--lockstep]
//!                 [--trace-spans [path]] [--phase-report]
//! marvel disasm <benchmark> [--isa ...] [--limit N]
//! marvel campaign <benchmark> [--isa ...] [--target prf|l1i|l1d|l2|lq|sq|rob|rename]
//!                 [--faults N] [--kind transient|permanent] [--hvf] [--seed S]
//!                 [--prep ref|cycle] [--reset-mode clone|dirty]
//!                 [--ladder-rungs N] [--convergence-exit] [--lane-width N]
//!                 [--metrics [path]] [--forensics [path]] [--progress [ms]]
//!                 [--taint] [--attribution [path]] [--trace-pipeline [dir]]
//!                 [--trace-spans [path]] [--phase-report]
//! marvel dsa <design> [--faults N] [--fus N] [--reset-mode clone|dirty]
//!                 [--dsa-engine cycle|event]
//!                 [--ladder-rungs N] [--convergence-exit]
//!                 [--metrics [path]] [--forensics [path]] [--progress [ms]]
//!                 [--taint] [--attribution [path]]
//!                 [--trace-spans [path]] [--phase-report]
//! marvel serve [--root dir] [--addr host:port] [--workers N] [--shard N] [--once]
//! marvel submit <spec.json> [--root dir] [--spool]
//! marvel status [campaign-id] [--root dir]
//! marvel watch <campaign-id> [--root dir]
//! ```
//!
//! `--metrics`/`--forensics` export registry snapshots and flight-recorder
//! timelines (JSONL; default paths under `results/`); `--progress` prints
//! a live progress line with rate, ETA and the running AVF ± margin.
//! `--taint` turns on marvel-taint shadow tracking: per-run propagation
//! timelines ride the forensics dumps and the per-structure AVF
//! attribution table is printed and exported (CSV + JSONL).
//! `--trace-pipeline` writes a golden/faulty Konata pipeline trace pair
//! for the campaign's first non-masked fault.
//! `--trace-spans [path]` records marvel-spans phase tracing and writes a
//! Chrome trace-event JSON (load it in Perfetto / `chrome://tracing`);
//! `--phase-report` prints the per-phase wall-time attribution table
//! (calls, total/self µs, p50/p95) with a coverage line. Either flag
//! enables the collector; with both absent the span hooks stay no-ops.
//! `--reset-mode` selects how each injection run gets its starting state:
//! `dirty` (default) reuses one system per worker and undoes journaled
//! dirty state against the shared checkpoint; `clone` deep-clones the
//! checkpoint per run (the original path, kept as an oracle — both modes
//! produce bit-identical reports).
//! `--dsa-engine` (default `event`) picks the accelerator drive engine:
//! `event` precomputes the static CDFG schedule at golden prep and jumps
//! between node-fire events, replaying memoized golden values for
//! untainted nodes; `cycle` is the original tick-every-cycle oracle.
//! Both engines produce bit-identical campaign reports — designs the
//! schedule builder rejects fall back to `cycle` automatically.
//! `--ladder-rungs` (default 8) snapshots the fault-free run at N evenly
//! spaced cycles; each injection run then restores the nearest rung below
//! its injection cycle instead of re-simulating the fault-free prefix.
//! `--convergence-exit` additionally diffs each run's journaled dirty
//! state against the golden rung at every crossing and declares the fault
//! Masked the moment all of it has converged. Both are pure optimisations:
//! reports stay bit-identical to `--ladder-rungs 0` (the full-run oracle).
//! `--lane-width` (default 64) packs up to N single-bit transients on the
//! same structure into bit-plane lanes of one shared golden execution,
//! forking a lane out to an ordinary scalar run the moment it diverges;
//! 0 (or 1) disables packing and restores the scalar oracle. Pure
//! optimisation: records stay byte-identical at every width.
//! `--lockstep` runs the cycle-level core under the architectural
//! reference model, checking every committed instruction's effects and
//! reporting the first divergence; `--prep ref` fast-forwards the golden
//! run to the checkpoint with the reference interpreter instead of the
//! cycle-level core.
//! `--journal <path>` journals every completed run (fsync'd watermarks,
//! same format as the campaign service); Ctrl-C flushes the journal and
//! prints a resume hint, and `--resume` continues an interrupted campaign
//! from its journal — the final report is byte-identical to an
//! uninterrupted run.
//! `marvel serve` starts the campaign service (see `marvel-serve`):
//! submit schema-versioned specs with `marvel submit`, inspect them with
//! `marvel status`, and stream live progress with `marvel watch`.

use gem5_marvel::core::{
    attribution_by_structure, attribution_csv, attribution_jsonl, build_campaign_ladder, campaign_masks,
    drive_masks, render_attribution, run_campaign, run_dsa_campaign, trace_pipeline_pair,
    CampaignConfig, CampaignResult, DsaEngine, DsaGolden, FaultEffect, FaultKind, Golden, ResetMode,
    RunRecord, TelemetryConfig,
};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::assemble;
use gem5_marvel::isa::{disassemble, Isa};
use gem5_marvel::serve::{
    install_shutdown_handler, read_addr_file, request, serve, watch, CampaignSpec, Journal, ServeConfig,
    Workload,
};
use gem5_marvel::soc::{RunOutcome, System, Target};
use gem5_marvel::telemetry::{
    append_jsonl_line, json_string, render_chrome_trace, render_phase_table, write_snapshot, PhaseId,
    Registry, SpanCollector,
};
use gem5_marvel::workloads::{accel, mibench};
use marvel_accel::FuConfig;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Mutex;

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
    switches: std::collections::HashSet<String>,
}

fn parse_args(argv: &[String]) -> Args {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut switches = std::collections::HashSet::new();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if let Some(name) = a.strip_prefix("--") {
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                flags.insert(name.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                switches.insert(name.to_string());
                i += 1;
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Args { positional, flags, switches }
}

fn parse_isa(s: &str) -> Result<Isa, String> {
    match s.to_lowercase().as_str() {
        "arm" => Ok(Isa::Arm),
        "x86" => Ok(Isa::X86),
        "riscv" | "risc-v" | "rv" => Ok(Isa::RiscV),
        other => Err(format!("unknown ISA '{other}' (arm|x86|riscv)")),
    }
}

fn parse_target(s: &str) -> Result<Target, String> {
    Ok(match s.to_lowercase().as_str() {
        "prf" | "rf" => Target::PrfInt,
        "prf-fp" | "fp" => Target::PrfFp,
        "l1i" => Target::L1I,
        "l1d" => Target::L1D,
        "l2" => Target::L2,
        "lq" => Target::LoadQueue,
        "sq" => Target::StoreQueue,
        "rob" => Target::Rob,
        "rename" => Target::RenameMap,
        other => return Err(format!("unknown target '{other}'")),
    })
}

/// Parse `--reset-mode clone|dirty` (default: dirty, the zero-copy path;
/// `clone` keeps the original deep-clone-per-run oracle selectable).
fn parse_reset_mode(args: &Args) -> Result<ResetMode, String> {
    match args.flags.get("reset-mode") {
        None => Ok(ResetMode::default()),
        Some(v) => ResetMode::parse(v).ok_or_else(|| format!("unknown reset mode '{v}' (clone|dirty)")),
    }
}

/// Parse `--ladder-rungs N` (default 8; 0 disables the checkpoint ladder
/// and restores the full-prefix oracle) plus the `--convergence-exit`
/// switch (dirty-diff masked-run exit at ladder rungs).
fn parse_ladder(args: &Args) -> Result<(usize, bool), String> {
    let rungs = match args.flags.get("ladder-rungs") {
        None => 8,
        Some(v) => v.parse().map_err(|_| format!("bad --ladder-rungs '{v}' (want a count)"))?,
    };
    Ok((rungs, args.switches.contains("convergence-exit")))
}

/// Parse `--lane-width N` (default 64: pack up to 64 single-bit
/// transients per lane pass; 0 or 1 restores the scalar oracle; widths
/// above 64 are clamped by the engine).
fn parse_lane_width(args: &Args) -> Result<usize, String> {
    match args.flags.get("lane-width") {
        None => Ok(CampaignConfig::default().lane_width),
        Some(v) => v.parse().map_err(|_| format!("bad --lane-width '{v}' (want 0..=64)")),
    }
}

/// Resolve `--<name> <path>` (explicit path) or bare `--<name>` (default
/// path under `results/`).
fn path_flag(args: &Args, name: &str, default: &str) -> Option<PathBuf> {
    if let Some(v) = args.flags.get(name) {
        Some(PathBuf::from(v))
    } else if args.switches.contains(name) {
        Some(PathBuf::from(default))
    } else {
        None
    }
}

/// Where the marvel-spans output of a command goes: the Chrome trace
/// JSON path (`--trace-spans [path]`) and/or the printed attribution
/// table (`--phase-report`). Both absent ⇒ span collection stays off.
struct SpanOutputs {
    trace: Option<PathBuf>,
    report: bool,
}

/// Build the observability config from `--metrics`, `--forensics`,
/// `--progress [ms]`, `--trace-spans` and `--phase-report`. Returns the
/// config plus the export paths and span outputs.
fn telemetry_from_args(
    args: &Args,
    metrics_default: &str,
    forensics_default: &str,
    trace_default: &str,
) -> (TelemetryConfig, Option<PathBuf>, Option<PathBuf>, SpanOutputs) {
    let metrics = path_flag(args, "metrics", metrics_default);
    let forensics = path_flag(args, "forensics", forensics_default);
    let spans_out = SpanOutputs {
        trace: path_flag(args, "trace-spans", trace_default),
        report: args.switches.contains("phase-report"),
    };
    let progress_interval_ms = if args.switches.contains("progress") {
        500
    } else {
        args.flags.get("progress").and_then(|v| v.parse().ok()).unwrap_or(0)
    };
    let taint = args.switches.contains("taint") || args.flags.contains_key("taint");
    let tel = TelemetryConfig {
        registry: if metrics.is_some() { Registry::new() } else { Registry::disabled() },
        progress_interval_ms,
        // Taint timelines ride the flight recorder, so --taint implies it.
        flight_capacity: if forensics.is_some() || taint { 64 } else { 0 },
        taint,
        spans: if spans_out.trace.is_some() || spans_out.report {
            SpanCollector::enabled()
        } else {
            SpanCollector::disabled()
        },
    };
    (tel, metrics, forensics, spans_out)
}

/// Print the phase attribution table and/or write the Chrome trace JSON.
/// The emitted trace is re-parsed with the service's JSON parser before
/// it lands on disk — an artifact Perfetto cannot load must fail here,
/// not in the browser.
fn report_spans(spans: &SpanCollector, out: &SpanOutputs) -> Result<(), String> {
    if !spans.is_enabled() {
        return Ok(());
    }
    if out.report {
        print!("{}", render_phase_table(&spans.report()));
    }
    if let Some(path) = &out.trace {
        let json = render_chrome_trace(&spans.trace());
        let parsed = gem5_marvel::serve::json::parse(&json)
            .map_err(|e| format!("emitted span trace is not valid JSON: {e}"))?;
        let events = parsed
            .get("traceEvents")
            .and_then(gem5_marvel::serve::json::Json::as_array)
            .ok_or("emitted span trace has no traceEvents array")?
            .len();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
            }
        }
        std::fs::write(path, &json).map_err(|e| e.to_string())?;
        eprintln!("span trace ({events} events, validated) written to {}", path.display());
    }
    Ok(())
}

/// Print the per-structure attribution table and export it next to the
/// other artifacts as schema-versioned CSV + JSONL.
fn report_attribution(records: &[RunRecord], csv_path: &std::path::Path) -> Result<(), String> {
    let Some(map) = attribution_by_structure(records) else { return Ok(()) };
    print!("{}", render_attribution(&map));
    if let Some(parent) = csv_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
    }
    std::fs::write(csv_path, attribution_csv(&map)).map_err(|e| e.to_string())?;
    let jsonl_path = csv_path.with_extension("jsonl");
    std::fs::write(&jsonl_path, attribution_jsonl(&map)).map_err(|e| e.to_string())?;
    eprintln!("attribution written to {} and {}", csv_path.display(), jsonl_path.display());
    Ok(())
}

/// Append every retained flight-recorder dump to `path` (one JSON object
/// per run), returning how many were written. The file is truncated
/// first so reruns do not mix campaigns.
fn dump_forensics(path: &std::path::Path, records: &[RunRecord], label: &str) -> Result<usize, String> {
    let mut n = 0;
    for (i, r) in records.iter().enumerate() {
        if let Some(d) = &r.forensics {
            let line = format!(
                "{{\"campaign\":{},\"run\":{},\"effect\":{},\"cycles\":{},\"timeline\":{}}}",
                json_string(label),
                i,
                json_string(&format!("{:?}", r.effect)),
                r.cycles,
                d.to_json()
            );
            append_jsonl_line(path, &line).map_err(|e| e.to_string())?;
            n += 1;
        }
    }
    Ok(n)
}

fn golden_for(bench: &str, isa: Isa, fast: bool) -> Result<Golden, String> {
    if !mibench::NAMES.contains(&bench) {
        return Err(format!("unknown benchmark '{bench}' (try `marvel list`)"));
    }
    let bin = assemble(&mibench::build(bench), isa).map_err(|e| e.to_string())?;
    let mut sys = System::new(CoreConfig::table2(isa));
    sys.load_binary(&bin);
    if fast {
        Golden::prepare_fast(sys, 200_000_000).map_err(|e| e.to_string())
    } else {
        Golden::prepare(sys, 200_000_000).map_err(|e| e.to_string())
    }
}

fn cmd_list() -> Result<(), String> {
    println!("CPU benchmarks (MiBench-style):");
    for n in mibench::NAMES {
        println!("  {n}");
    }
    println!("\nDSA designs (MachSuite-style, Table IV):");
    for d in accel::designs() {
        let comps: Vec<String> =
            d.components.iter().map(|c| format!("{} ({} B)", c.name, c.bytes)).collect();
        println!("  {:<12} {}", d.name, comps.join(", "));
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let bench = args.positional.get(1).ok_or("usage: marvel run <benchmark>")?;
    let isa = parse_isa(args.flags.get("isa").map(String::as_str).unwrap_or("riscv"))?;
    let bin = assemble(&mibench::build(bench), isa).map_err(|e| e.to_string())?;
    let mut sys = System::new(CoreConfig::table2(isa));
    sys.load_binary(&bin);
    let lockstep = args.switches.contains("lockstep");
    if lockstep {
        sys.enable_lockstep();
    }
    let spans_out = SpanOutputs {
        trace: path_flag(args, "trace-spans", "results/run_trace.json"),
        report: args.switches.contains("phase-report"),
    };
    let spans = if spans_out.trace.is_some() || spans_out.report {
        SpanCollector::enabled()
    } else {
        SpanCollector::disabled()
    };
    let outcome = spans.time(PhaseId::SimStepCpu, || sys.run(200_000_000));
    report_spans(&spans, &spans_out)?;
    match outcome {
        RunOutcome::Halted { cycles } => {
            if lockstep {
                if let Some(d) = sys.lockstep_divergence() {
                    return Err(format!("lockstep divergence detected:\n{d}"));
                }
                let ls = sys.lockstep.as_deref().expect("lockstep was enabled");
                match ls.disabled_reason() {
                    Some(why) => {
                        eprintln!("lockstep: {} commits checked, then suspended ({why})", ls.checked())
                    }
                    None => {
                        eprintln!("lockstep: all {} commits match the reference model", ls.checked())
                    }
                }
            }
            let s = &sys.core.stats;
            println!("{bench} on {isa}: halted after {cycles} cycles");
            println!("  code size       : {} B", bin.code_len);
            println!("  committed insts : {}", s.committed_macros);
            println!("  IPC             : {:.2}", s.ipc());
            println!("  branches        : {} ({} mispredicted)", s.branches, s.mispredicts);
            println!("  loads / stores  : {} / {}", s.loads, s.stores);
            println!(
                "  L1I hit rate    : {:.1}%",
                100.0 * sys.core.l1i.hits as f64
                    / (sys.core.l1i.hits + sys.core.l1i.misses).max(1) as f64
            );
            println!(
                "  L1D hit rate    : {:.1}%",
                100.0 * sys.core.l1d.hits as f64
                    / (sys.core.l1d.hits + sys.core.l1d.misses).max(1) as f64
            );
            let hex: String = sys.output().iter().map(|b| format!("{b:02x}")).collect();
            println!("  output ({} B)   : {hex}", sys.output().len());
            Ok(())
        }
        o => {
            if let Some(d) = sys.lockstep_divergence() {
                return Err(format!("lockstep divergence detected:\n{d}"));
            }
            Err(format!("{bench} did not halt: {o:?}"))
        }
    }
}

fn cmd_disasm(args: &Args) -> Result<(), String> {
    let bench = args.positional.get(1).ok_or("usage: marvel disasm <benchmark>")?;
    let isa = parse_isa(args.flags.get("isa").map(String::as_str).unwrap_or("riscv"))?;
    let limit: usize = args.flags.get("limit").map(|v| v.parse().unwrap_or(40)).unwrap_or(40);
    let bin = assemble(&mibench::build(bench), isa).map_err(|e| e.to_string())?;
    for line in disassemble(isa, bin.entry, &bin.image[..bin.code_len]).iter().take(limit) {
        println!("{line}");
    }
    println!("... ({} B of code total)", bin.code_len);
    Ok(())
}

fn cmd_campaign(args: &Args) -> Result<(), String> {
    let bench = args.positional.get(1).ok_or("usage: marvel campaign <benchmark>")?;
    let isa = parse_isa(args.flags.get("isa").map(String::as_str).unwrap_or("riscv"))?;
    let target = parse_target(args.flags.get("target").map(String::as_str).unwrap_or("prf"))?;
    let n_faults: usize = args.flags.get("faults").map(|v| v.parse().unwrap_or(100)).unwrap_or(100);
    let kind = match args.flags.get("kind").map(String::as_str).unwrap_or("transient") {
        "permanent" => FaultKind::Permanent,
        _ => FaultKind::Transient,
    };
    let seed: u64 = args.flags.get("seed").map(|v| v.parse().unwrap_or(0xC0FFEE)).unwrap_or(0xC0FFEE);
    let fast_prep = match args.flags.get("prep").map(String::as_str).unwrap_or("cycle") {
        "ref" | "fast" => true,
        "cycle" | "o3" => false,
        other => return Err(format!("unknown prep mode '{other}' (ref|cycle)")),
    };
    let reset_mode = parse_reset_mode(args)?;
    let (ladder_rungs, convergence_exit) = parse_ladder(args)?;
    let lane_width = parse_lane_width(args)?;
    let (telemetry, metrics_path, forensics_path, spans_out) = telemetry_from_args(
        args,
        "results/campaign_metrics.jsonl",
        "results/campaign_forensics.jsonl",
        "results/campaign_trace.json",
    );
    let cc = CampaignConfig {
        n_faults,
        kind,
        seed,
        collect_hvf: args.switches.contains("hvf"),
        reset_mode,
        ladder_rungs,
        convergence_exit,
        lane_width,
        telemetry,
        ..Default::default()
    };
    eprintln!(
        "preparing golden run for {bench}/{isa} ({} prep) ...",
        if fast_prep { "reference fast-forward" } else { "cycle-level" }
    );
    let golden = cc.telemetry.spans.time(PhaseId::GoldenPrep, || golden_for(bench, isa, fast_prep))?;
    golden.publish_metrics(&cc.telemetry.registry);
    eprintln!(
        "golden: {} cycles, injecting {} {:?} faults into {} ...",
        golden.exec_cycles,
        n_faults,
        kind,
        target.name()
    );
    let res = match args.flags.get("journal").map(PathBuf::from) {
        Some(jpath) => {
            // Journal identity = the service's spec digest, so a CLI
            // journal and a service journal are interchangeable.
            let spec = CampaignSpec {
                id: args.flags.get("campaign-id").cloned().unwrap_or_else(|| {
                    format!("{bench}-{}", args.flags.get("target").map(String::as_str).unwrap_or("prf"))
                }),
                workload: Workload::Cpu { bench: bench.clone(), isa },
                cpu_target: target,
                n_faults,
                kind,
                seed,
                workers: 0,
                reset_mode,
                ladder_rungs,
                convergence_exit,
                collect_hvf: cc.collect_hvf,
                taint: cc.telemetry.taint,
                fast_prep,
            };
            let resume = args.switches.contains("resume");
            match run_campaign_journaled(&golden, target, &cc, &spec, &jpath, resume)? {
                Some(res) => res,
                // Interrupted: the journal holds the progress and the
                // resume hint is already printed.
                None => return Ok(()),
            }
        }
        None => {
            if args.switches.contains("resume") {
                return Err("--resume requires --journal <path>".into());
            }
            run_campaign(&golden, target, &cc)
        }
    };
    println!("benchmark : {bench} ({isa})");
    println!("target    : {}", target.name());
    println!("faults    : {} ({kind:?}, seed {seed:#x})", res.n());
    println!("AVF       : {:.2}% (±{:.2}% at 95%)", res.avf() * 100.0, res.margin() * 100.0);
    println!("  SDC     : {:.2}%", res.sdc_avf() * 100.0);
    println!("  Crash   : {:.2}%", res.crash_avf() * 100.0);
    if let Some(h) = res.hvf() {
        println!("HVF       : {:.2}%", h * 100.0);
    }
    println!("early-terminated runs: {:.0}%", res.early_termination_rate() * 100.0);
    if convergence_exit {
        println!("convergence exits    : {:.0}%", res.convergence_exit_rate() * 100.0);
    }
    if let Some(p) = &metrics_path {
        write_snapshot(&cc.telemetry.registry.snapshot(), p).map_err(|e| e.to_string())?;
        eprintln!("metrics snapshot written to {}", p.display());
    }
    if let Some(p) = &forensics_path {
        std::fs::remove_file(p).ok();
        let n = dump_forensics(p, &res.records, &format!("{bench}/{}", target.name()))?;
        eprintln!("{n} flight-recorder dumps written to {}", p.display());
        if let Some(r) = res.records.iter().find(|r| r.forensics.is_some()) {
            println!("\nfirst {:?} timeline:", r.effect);
            print!("{}", r.forensics.as_ref().unwrap().render());
        }
    }
    if cc.telemetry.taint {
        let p = path_flag(args, "attribution", "results/campaign_attribution.csv")
            .unwrap_or_else(|| PathBuf::from("results/campaign_attribution.csv"));
        report_attribution(&res.records, &p)?;
    }
    if let Some(dir) = path_flag(args, "trace-pipeline", "results/pipeview") {
        // Trace the first non-masked fault of the campaign (fall back to
        // run 0 when everything was masked) against its fault-free twin.
        let masks = campaign_masks(&golden, target, &cc);
        let idx = res
            .records
            .iter()
            .position(|r| r.effect != FaultEffect::Masked)
            .unwrap_or(0)
            .min(masks.len().saturating_sub(1));
        let (gtrace, ftrace) = trace_pipeline_pair(&golden, &masks[idx], &cc);
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
        let gp = dir.join(format!("{bench}_golden.kanata"));
        let fp = dir.join(format!("{bench}_run{idx}_faulty.kanata"));
        std::fs::write(&gp, gtrace).map_err(|e| e.to_string())?;
        std::fs::write(&fp, ftrace).map_err(|e| e.to_string())?;
        eprintln!(
            "pipeline trace pair (run {idx}, {:?}) written to {} and {}",
            res.records[idx].effect,
            gp.display(),
            fp.display()
        );
    }
    report_spans(&cc.telemetry.spans, &spans_out)?;
    Ok(())
}

/// The `--journal` campaign path: drive the same masks through the same
/// engine, but journal every record as it lands (service journal format)
/// and honour SIGINT/SIGTERM by flushing and printing a resume hint.
/// Returns `None` when interrupted, `Some(result)` when complete — and
/// because per-mask records are deterministic, a resumed campaign's
/// result is bit-identical to an uninterrupted one.
fn run_campaign_journaled(
    golden: &Golden,
    target: Target,
    cc: &CampaignConfig,
    spec: &CampaignSpec,
    path: &Path,
    resume: bool,
) -> Result<Option<CampaignResult>, String> {
    let (journal, recovered) = Journal::open(path, &spec.id, &spec.digest(), cc.n_faults)?;
    let prior = recovered.iter().filter(|r| r.is_some()).count();
    if prior > 0 && !resume {
        return Err(format!(
            "journal {} already holds {prior}/{} runs; pass --resume to continue it \
             or delete the file to restart",
            path.display(),
            cc.n_faults
        ));
    }
    if prior > 0 {
        eprintln!("resuming from {}: {prior}/{} runs already journaled", path.display(), cc.n_faults);
    }
    let ladder = build_campaign_ladder(golden, cc);
    let masks = campaign_masks(golden, target, cc);
    let bit_len = golden.ckpt.bit_len(target);
    let population = bit_len.saturating_mul(golden.exec_cycles.max(1));
    let reg = &cc.telemetry.registry;
    reg.publish("campaign.bit_population", bit_len);
    reg.publish("campaign.golden_exec_cycles", golden.exec_cycles);
    let skip: Vec<bool> = recovered.iter().map(|r| r.is_some()).collect();
    let state = Mutex::new((journal, recovered));
    let cancel = install_shutdown_handler();
    let outcome =
        drive_masks(golden, ladder.as_ref(), &masks, cc, population, &skip, Some(cancel), &|i, rec| {
            let mut g = state.lock().unwrap();
            if let Err(e) = g.0.append(i, &rec) {
                eprintln!("journal: {e}");
            }
            g.1[i] = Some(rec);
        });
    let (mut journal, recovered) = state.into_inner().unwrap();
    journal.flush()?;
    if outcome.cancelled {
        eprintln!(
            "interrupted — {}/{} runs journaled to {}; re-run with --journal {} --resume to finish",
            journal.done(),
            cc.n_faults,
            path.display(),
            path.display()
        );
        return Ok(None);
    }
    let records: Vec<RunRecord> = recovered.into_iter().map(|r| r.expect("complete journal")).collect();
    Ok(Some(CampaignResult {
        target,
        records,
        bit_population: bit_len,
        golden_exec_cycles: golden.exec_cycles,
        confidence: cc.confidence,
    }))
}

fn cmd_dsa(args: &Args) -> Result<(), String> {
    let name = args.positional.get(1).ok_or("usage: marvel dsa <design>")?.to_uppercase();
    let n_faults: usize = args.flags.get("faults").map(|v| v.parse().unwrap_or(100)).unwrap_or(100);
    let fus: usize = args.flags.get("fus").map(|v| v.parse().unwrap_or(4)).unwrap_or(4);
    let d = accel::designs()
        .into_iter()
        .find(|d| d.name == name)
        .ok_or_else(|| format!("unknown design '{name}' (try `marvel list`)"))?;
    let reset_mode = parse_reset_mode(args)?;
    let dsa_engine = match args.flags.get("dsa-engine").map(String::as_str) {
        None => DsaEngine::default(),
        Some(s) => {
            DsaEngine::parse(s).ok_or_else(|| format!("unknown --dsa-engine '{s}' (cycle|event)"))?
        }
    };
    let (ladder_rungs, convergence_exit) = parse_ladder(args)?;
    let (telemetry, metrics_path, forensics_path, spans_out) = telemetry_from_args(
        args,
        "results/dsa_metrics.jsonl",
        "results/dsa_forensics.jsonl",
        "results/dsa_trace.json",
    );
    let cc = CampaignConfig {
        n_faults,
        reset_mode,
        ladder_rungs,
        convergence_exit,
        dsa_engine,
        telemetry,
        ..Default::default()
    };
    // prepare_spanned splits the cycle-oracle run (GoldenPrep) from the
    // static-schedule build + trace recording (ScheduleBuild).
    let golden =
        DsaGolden::prepare_spanned((d.make)(FuConfig::uniform(fus)), 100_000_000, &cc.telemetry.spans);
    println!(
        "{name}: {} cycles fault-free, area {:.1} a.u., {} FUs/class, {} engine",
        golden.cycles,
        golden.harness.accel.area(),
        fus,
        match cc.dsa_engine {
            DsaEngine::Event if golden.harness.accel.replay_armed() => "event",
            DsaEngine::Event => "event (fell back to cycle: unschedulable)",
            DsaEngine::Cycle => "cycle",
        }
    );
    if let Some(p) = &forensics_path {
        std::fs::remove_file(p).ok();
    }
    let mut dumps = 0;
    let mut all_records = Vec::new();
    for c in &d.components {
        let res = run_dsa_campaign(&golden, c.target, &cc);
        println!(
            "  {:<10} ({:>6} B {:<8}): AVF {:>5.1}%  (SDC {:>5.1}%, Crash {:>5.1}%)",
            c.name,
            c.bytes,
            c.kind.name(),
            res.avf() * 100.0,
            res.sdc_avf() * 100.0,
            res.crash_avf() * 100.0
        );
        if let Some(p) = &forensics_path {
            dumps += dump_forensics(p, &res.records, &format!("{name}/{}", c.name))?;
        }
        if cc.telemetry.taint {
            all_records.extend(res.records);
        }
    }
    if cc.telemetry.taint {
        let p = path_flag(args, "attribution", "results/dsa_attribution.csv")
            .unwrap_or_else(|| PathBuf::from("results/dsa_attribution.csv"));
        report_attribution(&all_records, &p)?;
    }
    if let Some(p) = &metrics_path {
        write_snapshot(&cc.telemetry.registry.snapshot(), p).map_err(|e| e.to_string())?;
        eprintln!("metrics snapshot written to {}", p.display());
    }
    if let Some(p) = &forensics_path {
        eprintln!("{dumps} flight-recorder dumps written to {}", p.display());
    }
    report_spans(&cc.telemetry.spans, &spans_out)?;
    Ok(())
}

/// `marvel serve` — run the campaign service in the foreground until
/// SIGINT/SIGTERM (or, with `--once`, until every campaign settles).
fn cmd_serve(args: &Args) -> Result<(), String> {
    let mut cfg = ServeConfig::default();
    if let Some(root) = args.flags.get("root") {
        cfg.root = PathBuf::from(root);
    }
    if let Some(addr) = args.flags.get("addr") {
        cfg.addr = addr.clone();
    }
    if let Some(w) = args.flags.get("workers") {
        cfg.workers = w.parse().map_err(|_| format!("bad --workers '{w}'"))?;
    }
    if let Some(s) = args.flags.get("shard") {
        cfg.shard = s.parse().map_err(|_| format!("bad --shard '{s}'"))?;
        if cfg.shard == 0 {
            return Err("--shard must be at least 1".into());
        }
    }
    cfg.once = args.switches.contains("once");
    serve(cfg)
}

fn service_root(args: &Args) -> PathBuf {
    args.flags.get("root").map(PathBuf::from).unwrap_or_else(|| PathBuf::from("results"))
}

/// `marvel submit <spec.json>` — validate a spec locally, then hand it to
/// the running service over TCP (or drop it into the spool with
/// `--spool` when the service isn't reachable yet).
fn cmd_submit(args: &Args) -> Result<(), String> {
    let path = args.positional.get(1).ok_or("usage: marvel submit <spec.json>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    // Validate locally first so a typo'd spec fails with a real parse
    // error rather than a one-line service rejection.
    let spec = CampaignSpec::parse(text.trim())?;
    let root = service_root(args);
    if args.switches.contains("spool") {
        let spooled = gem5_marvel::serve::spool_spec(&root, &spec)?;
        println!("spooled {} for pickup at {}", spec.id, spooled.display());
        return Ok(());
    }
    let addr = read_addr_file(&root)?;
    let reply = request(&addr, &format!("SUBMIT {}", spec.render()))?;
    println!("{reply}");
    if reply.contains("\"ok\":false") {
        return Err(format!("service rejected spec '{}'", spec.id));
    }
    Ok(())
}

/// `marvel status [id]` — one-shot status query against the service.
fn cmd_status(args: &Args) -> Result<(), String> {
    let root = service_root(args);
    let addr = read_addr_file(&root)?;
    let line = match args.positional.get(1) {
        Some(id) => format!("STATUS {id}"),
        None => "STATUS".to_string(),
    };
    println!("{}", request(&addr, &line)?);
    Ok(())
}

/// `marvel watch <id>` — stream live progress lines until the campaign
/// settles (the service closes the stream with a final status line).
fn cmd_watch(args: &Args) -> Result<(), String> {
    let id = args.positional.get(1).ok_or("usage: marvel watch <campaign-id>")?;
    let root = service_root(args);
    let addr = read_addr_file(&root)?;
    watch(&addr, id, |line| {
        println!("{line}");
        true
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv);
    let cmd = args.positional.first().map(String::as_str).unwrap_or("help");
    let r = match cmd {
        "list" => cmd_list(),
        "run" => cmd_run(&args),
        "disasm" => cmd_disasm(&args),
        "campaign" => cmd_campaign(&args),
        "dsa" => cmd_dsa(&args),
        "serve" => cmd_serve(&args),
        "submit" => cmd_submit(&args),
        "status" => cmd_status(&args),
        "watch" => cmd_watch(&args),
        _ => {
            eprintln!(
                "marvel — microarchitecture-level fault injection\n\n\
                 usage:\n  marvel list\n  marvel run <benchmark> [--isa arm|x86|riscv] [--lockstep]\n  \
                 marvel disasm <benchmark> [--isa ...] [--limit N]\n  \
                 marvel campaign <benchmark> [--isa ...] [--target prf|l1i|l1d|l2|lq|sq|rob|rename]\n            \
                 [--faults N] [--kind transient|permanent] [--hvf] [--seed S] [--prep ref|cycle]\n            \
                 [--reset-mode clone|dirty] [--ladder-rungs N] [--convergence-exit] [--lane-width N]\n            \
                 [--metrics [path]] [--forensics [path]] [--progress [ms]]\n            \
                 [--taint] [--attribution [path]] [--trace-pipeline [dir]]\n            \
                 [--trace-spans [path]] [--phase-report]\n  \
                 marvel dsa <design> [--faults N] [--fus N] [--reset-mode clone|dirty]\n            \
                 [--dsa-engine cycle|event] [--ladder-rungs N] [--convergence-exit]\n            \
                 [--metrics [path]] [--forensics [path]] [--progress [ms]]\n            \
                 [--taint] [--attribution [path]] [--trace-spans [path]] [--phase-report]\n  \
                 marvel campaign ... [--journal path [--resume]] [--campaign-id id]\n  \
                 marvel serve [--root dir] [--addr host:port] [--workers N] [--shard N] [--once]\n  \
                 marvel submit <spec.json> [--root dir] [--spool]\n  \
                 marvel status [campaign-id] [--root dir]\n  \
                 marvel watch <campaign-id> [--root dir]"
            );
            return ExitCode::from(2);
        }
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
