//! # gem5-marvel
//!
//! A from-scratch Rust reproduction of **gem5-MARVEL** (HPCA 2024): a
//! microarchitecture-level fault-injection framework for heterogeneous
//! SoCs — out-of-order CPUs of three 64-bit ISA flavours (x86, Arm,
//! RISC-V) plus SALAM-style domain-specific accelerators — evaluating
//! transient and permanent fault resilience via AVF and HVF.
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`isa`] — the three mini-ISAs (encodings, decoders, register specs);
//! * [`ir`] — the portable IR and per-ISA compiler;
//! * [`cpu`] — the cycle-level out-of-order core with injectable
//!   structures;
//! * [`ref_model`] — the architectural reference interpreter used for
//!   lockstep differential checking and fast-forward golden prep;
//! * [`accel`] — the CDFG accelerator engine (SPMs, RegBanks, MMRs, DMA);
//! * [`soc`] — system composition, interrupt controllers, checkpointing;
//! * [`core`] — the fault-injection framework (the paper's contribution);
//! * [`workloads`] — the MiBench-style suite and MachSuite-style designs;
//! * [`serve`] — the campaign service (journaled, resumable,
//!   shard-scheduled campaigns over a line-delimited TCP protocol).
//!
//! Start with `examples/quickstart.rs`, or regenerate the paper's tables
//! and figures with `cargo bench -p marvel-experiments`.

pub use marvel_accel as accel;
pub use marvel_core as core;
pub use marvel_cpu as cpu;
pub use marvel_ir as ir;
pub use marvel_isa as isa;
pub use marvel_ref as ref_model;
pub use marvel_serve as serve;
pub use marvel_soc as soc;
pub use marvel_telemetry as telemetry;
pub use marvel_workloads as workloads;
