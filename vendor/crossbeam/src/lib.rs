//! Offline stand-in for the `crossbeam` crate covering the one API this
//! workspace uses: `crossbeam::thread::scope` + `Scope::spawn`. Backed by
//! `std::thread::scope` (stable since Rust 1.63), wrapped to preserve the
//! crossbeam call shape (`scope(..)` returns `Result`, spawn closures
//! receive a `&Scope` argument).

pub mod thread {
    use std::any::Any;

    /// Error type matching crossbeam's `scope` result payload.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// Wrapper over [`std::thread::Scope`] mirroring crossbeam's `Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives a `&Scope` (ignored
        /// by all in-repo callers, but kept for signature compatibility).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope handle; joins all spawned threads before
    /// returning. Unlike crossbeam, a panicking child propagates the panic
    /// at join (so `Err` is never actually produced) — callers treating
    /// the result with `.expect(..)` behave identically either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_workers() {
        let n = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| n.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let n = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| n.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 1);
    }
}
