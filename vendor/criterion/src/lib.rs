//! Offline stand-in for the `criterion` crate: `criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! throughput annotations, and `Bencher::iter`.
//!
//! Measurement model: per benchmark, a short calibration pass sizes the
//! iteration batch, then `sample_size` batches are timed and the median
//! per-iteration latency is reported (plus throughput when annotated).
//! This is a pragmatic harness for relative comparisons, not a
//! statistically rigorous criterion replacement.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Display-name helper matching criterion's parameterised IDs.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure given to `bench_function`; `iter` runs and times
/// the measured routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    target_time: Duration,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: how many iterations fit the per-sample budget?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_sample = self.target_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let (tp, n) = (self.throughput, self.sample_size);
        self.criterion.run_one(&full, tp, n, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let (tp, n) = (self.throughput, self.sample_size);
        self.criterion.run_one(&full, tp, n, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, target_time: Duration::from_millis(300) }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size }
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.sample_size;
        self.run_one(&id.to_string(), None, n, f);
        self
    }

    fn run_one<F>(&mut self, name: &str, throughput: Option<Throughput>, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(sample_size);
        let mut b = Bencher { samples: &mut samples, sample_size, target_time: self.target_time };
        f(&mut b);
        samples.sort();
        if samples.is_empty() {
            println!("{name:<40} (no samples: Bencher::iter never called)");
            return;
        }
        let median = samples[samples.len() / 2];
        let line = match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / median.as_secs_f64();
                format!("{name:<40} {:>12} /iter {:>14.0} elem/s", fmt_duration(median), rate)
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / median.as_secs_f64();
                format!("{name:<40} {:>12} /iter {:>14.0} B/s", fmt_duration(median), rate)
            }
            None => format!("{name:<40} {:>12} /iter", fmt_duration(median)),
        };
        println!("{line}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_output() {
        let mut c = Criterion { sample_size: 3, target_time: Duration::from_millis(5) };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion { sample_size: 2, target_time: Duration::from_millis(2) };
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &5u64, |b, &v| b.iter(|| v * 2));
        g.finish();
    }
}
