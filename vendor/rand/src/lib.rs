//! Offline stand-in for the `rand` crate, exposing the subset of the 0.8
//! API this workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer/float ranges and [`Rng::gen_bool`].
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors these shims (see `vendor/` in the repo root). The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! seed, which is all the fault-mask machinery requires. It is NOT the
//! same stream as the real `StdRng` (ChaCha12), so mask sequences differ
//! from upstream-rand builds; everything in-repo only relies on
//! seed-determinism, not on specific draws.

/// Low-level entropy source (object-safe core of [`Rng`]).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as $wide).wrapping_add(v as $wide) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (start as $wide).wrapping_add(v as $wide) as $t
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + unit * (end - start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..16).map(|_| r.gen_range(0u64..1_000_000)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_rate_sane() {
        let mut r = StdRng::seed_from_u64(1);
        let ones = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&ones), "{ones}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
