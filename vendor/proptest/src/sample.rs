//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy drawing uniformly from a fixed set of values.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

/// `select(options)`: pick one of `options` uniformly.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}
