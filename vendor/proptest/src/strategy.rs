//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::Rng;

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// A strategy yielding one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}
