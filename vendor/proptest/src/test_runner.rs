//! Test-runner plumbing for the shim `proptest!` macro.

pub use rand::rngs::StdRng;
use rand::SeedableRng;

/// Marker returned by `prop_assume!` when a case is discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected;

/// Subset of proptest's `Config`: only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps campaign-heavy property
        // tests fast while still exploring a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG: FNV-1a of the test name. Failures therefore
/// reproduce run-to-run without a persistence file.
pub fn case_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}
