//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::RngCore;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite values across a wide magnitude span (no NaN/inf, as tests
        // here do arithmetic comparisons on the results).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let mag = ((rng.next_u64() % 613) as i32 - 306) as f64;
        (unit - 0.5) * 2.0 * mag.exp2()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> char {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('\u{FFFD}')
    }
}

/// Strategy wrapper returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: core::marker::PhantomData }
}
