//! Offline stand-in for the `proptest` crate: the `proptest!` macro,
//! range/`any`/collection/sample/tuple strategies, `prop_assert*` and
//! `prop_assume!`. Cases are generated from a deterministic per-test seed
//! (FNV of the test name), so failures reproduce across runs.
//!
//! Differences from real proptest, by design of this shim:
//! * no shrinking — a failing case panics with the generated inputs left
//!   to the assertion message;
//! * `prop_assert*` panic immediately instead of returning `Err`;
//! * config knobs other than `cases` are accepted but ignored.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Re-exposes the module tree under the `prop::` prefix, as the real
/// prelude does (`prop::collection::vec`, `prop::sample::select`, ...).
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Discard the current case (counts as a rejection, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// The `proptest! { ... }` block: an optional
/// `#![proptest_config(..)]` inner attribute followed by `#[test]` fns
/// whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::case_rng(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(64);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let verdict = (|| -> ::core::result::Result<(), $crate::test_runner::Rejected> {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if verdict.is_ok() {
                    accepted += 1;
                }
            }
            assert!(
                accepted >= config.cases.min(1),
                "proptest {}: every generated case was rejected by prop_assume!",
                stringify!($name)
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
