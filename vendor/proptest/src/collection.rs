//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Length specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `vec(element, size)`: a vector of `element`-generated values.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
